#include "src/spec/experiment_runner.h"

#include <algorithm>
#include <utility>

#include "src/common/hash.h"

namespace btr {

StatusOr<Scenario> BuildScenario(const SpecScenario& spec) {
  if (spec.kind != SpecScenario::Kind::kInline) {
    const char* kind = ScenarioKindName(spec.kind);
    RandomDagParams params;
    if (spec.layers != 0) {
      params.layers = spec.layers;
    }
    if (spec.tasks_per_layer != 0) {
      params.tasks_per_layer = spec.tasks_per_layer;
    }
    if (spec.random_period != 0) {
      params.period = spec.random_period;
    }
    // Radio keys override the lossy/mobile generator defaults; a spec with
    // none keeps the generator's own channel model.
    RadioParams radio_storage;
    const RadioParams* radio = nullptr;
    if (spec.loss_pm != 0 || spec.duty_period != 0) {
      radio_storage.loss = static_cast<double>(spec.loss_pm) / 1000.0;
      radio_storage.duty_on = spec.duty_on;
      radio_storage.duty_period = spec.duty_period;
      radio = &radio_storage;
    }
    return MakeNamedScenario(kind, spec.nodes, spec.scenario_seed, &params, radio);
  }

  Scenario s;
  s.name = "inline";
  s.topology.AddNodes(spec.nodes);
  for (const SpecScenario::Link& link : spec.links) {
    // The parser range-checks these, but a hand-built (or sweep-mutated)
    // SpecScenario reaches here too — Topology::AddLink only asserts.
    std::vector<NodeId> endpoints;
    for (uint32_t n : link.nodes) {
      if (n >= spec.nodes) {
        return Status::InvalidArgument("link '" + link.name + "' endpoint " +
                                       std::to_string(n) + " out of range");
      }
      endpoints.push_back(NodeId(n));
    }
    const LinkId id = s.topology.AddLink(std::move(endpoints), link.bandwidth_bps,
                                         link.propagation, link.name);
    if (link.loss_pm != 0 || link.duty_period != 0) {
      s.topology.SetLinkDynamics(id, static_cast<double>(link.loss_pm) / 1000.0,
                                 link.duty_on, link.duty_period);
    }
  }
  s.workload = Dataflow(spec.period);
  for (const SpecScenario::Task& task : spec.tasks) {
    if (task.kind != TaskKind::kCompute && task.pinned_node >= spec.nodes) {
      return Status::InvalidArgument("task '" + task.name + "' pinned to node " +
                                     std::to_string(task.pinned_node) + " out of range");
    }
    switch (task.kind) {
      case TaskKind::kSource:
        s.workload.AddSource(task.name, task.wcet, NodeId(task.pinned_node),
                             task.criticality);
        break;
      case TaskKind::kCompute:
        s.workload.AddCompute(task.name, task.wcet, task.state_bytes, task.criticality);
        break;
      case TaskKind::kSink:
        s.workload.AddSink(task.name, task.wcet, NodeId(task.pinned_node),
                           task.criticality, task.deadline);
        break;
    }
  }
  for (const SpecScenario::Flow& flow : spec.flows) {
    const TaskId from = s.workload.FindTask(flow.from);
    const TaskId to = s.workload.FindTask(flow.to);
    if (!from.valid() || !to.valid()) {
      return Status::InvalidArgument("flow references unknown task");
    }
    s.workload.Connect(from, to, flow.bytes);
  }
  return s;
}

BtrConfig MakeBtrConfig(const ExperimentSpec& spec) {
  BtrConfig config;
  config.planner.max_faults = spec.max_faults;
  config.planner.recovery_bound = spec.recovery_bound;
  config.runtime.heartbeats = spec.heartbeats;
  config.runtime.dissem.mode = spec.dissem;
  if (spec.beacon_period != 0) {
    config.runtime.dissem.beacon_period = spec.beacon_period;
  }
  if (spec.suppress_k != 0) {
    config.runtime.dissem.suppression_k = spec.suppress_k;
  }
  if (spec.pace_mille != 0) {
    config.runtime.dissem.pace_fraction = static_cast<double>(spec.pace_mille) / 1000.0;
  }
  if (spec.wire_version == 4) {
    config.wire_format = StrategyWireFormat::kV4Binary;
  }
  config.seed = spec.seed;
  config.shards = spec.shards;
  return config;
}

NodeId ResolveCriticalPrimary(const BtrSystem& system) {
  const Dataflow& w = system.scenario().workload;
  const Plan* root = system.strategy().Lookup(FaultSet());
  if (root == nullptr) {
    return NodeId::Invalid();
  }
  // Prefer hosts that carry no pinned sensor/actuator: losing a sensor
  // node sheds its flows outright, which would make the scripted fault
  // trivially quiet.
  std::vector<bool> io_node(system.scenario().topology.node_count(), false);
  for (const TaskSpec& t : w.tasks()) {
    if (t.pinned_node.valid()) {
      io_node[t.pinned_node.value()] = true;
    }
  }
  std::vector<TaskId> by_criticality = w.ComputeIds();
  std::stable_sort(by_criticality.begin(), by_criticality.end(), [&w](TaskId a, TaskId b) {
    return w.task(a).criticality > w.task(b).criticality;
  });
  NodeId fallback;
  for (TaskId t : by_criticality) {
    const NodeId host = root->placement()[system.planner().graph().PrimaryOf(t)];
    if (!host.valid()) {
      continue;
    }
    if (!fallback.valid()) {
      fallback = host;
    }
    if (!io_node[host.value()]) {
      return host;
    }
  }
  return fallback;
}

std::string SerializeExperimentReport(const ExperimentReport& report) {
  std::string out = "EXPERIMENT " + report.name +
                    " phases=" + std::to_string(report.phases.size()) + '\n';
  for (size_t i = 0; i < report.phases.size(); ++i) {
    out += "PHASE " + std::to_string(i) + '\n';
    out += SerializeRunReport(report.phases[i]);
  }
  return out;
}

uint64_t FingerprintExperimentReport(const ExperimentReport& report) {
  return HashString(SerializeExperimentReport(report));
}

StatusOr<ExperimentReport> RunExperiment(const ExperimentSpec& spec,
                                         const ExperimentHooks& hooks) {
  if (spec.phases.empty()) {
    return Status::InvalidArgument("experiment has no phases");
  }
  StatusOr<Scenario> scenario = BuildScenario(spec.scenario);
  if (!scenario.ok()) {
    return scenario.status();
  }
  BtrSystem system(std::move(scenario).value(), MakeBtrConfig(spec));
  Status planned = system.Plan();
  if (!planned.ok()) {
    return planned;
  }
  return RunExperimentPhases(system, spec, hooks);
}

StatusOr<ExperimentReport> RunExperimentPhases(BtrSystem& system,
                                               const ExperimentSpec& spec,
                                               const ExperimentHooks& hooks) {
  if (spec.phases.empty()) {
    return Status::InvalidArgument("experiment has no phases");
  }
  if (!system.planned()) {
    return Status::FailedPrecondition("RunExperimentPhases needs a planned system");
  }
  if (hooks.after_plan) {
    hooks.after_plan(system);
  }
  // Resolved once, against the original fault-free plan: later phases keep
  // accusing the same victim even after an edit re-plans the placement.
  const NodeId critical_primary = ResolveCriticalPrimary(system);

  ExperimentReport report;
  report.name = spec.name;
  for (size_t i = 0; i < spec.phases.size(); ++i) {
    const SpecPhase& phase = spec.phases[i];
    system.ClearFaults();
    for (const SpecFault& fault : phase.faults) {
      FaultInjection inj = fault.injection;
      if (fault.critical_primary) {
        if (!critical_primary.valid()) {
          return Status::InvalidArgument(
              "node=critical-primary used but the workload has no compute task");
        }
        inj.node = critical_primary;
      }
      system.AddFault(inj);
    }
    if (phase.has_edit()) {
      Status applied = system.ApplyDelta(phase.edit, phase.edit_at);
      if (!applied.ok()) {
        return Status(applied.code(), "phase " + std::to_string(i) +
                                          " edit: " + applied.message());
      }
    }
    StatusOr<RunReport> run = system.Run(phase.periods);
    if (!run.ok()) {
      return Status(run.status().code(),
                    "phase " + std::to_string(i) + ": " + run.status().message());
    }
    report.phases.push_back(std::move(run).value());
    if (hooks.after_phase) {
      hooks.after_phase(i, system, report.phases.back());
    }
  }
  return report;
}

namespace {

bool ApplyAxis(ExperimentSpec* spec, const std::string& key, uint64_t value) {
  if (key == "seed") {
    spec->seed = value;
  } else if (key == "f") {
    spec->max_faults = static_cast<uint32_t>(value);
  } else if (key == "nodes") {
    spec->scenario.nodes = value;
  } else if (key == "recovery-us") {
    spec->recovery_bound = static_cast<SimDuration>(value) * 1000;
  } else {
    return false;
  }
  return true;
}

// Hardening errors cite the SWEEP record's source line when the axis came
// from a parsed spec (hand-built axes have line 0).
Status AxisError(const SweepAxis& axis, const std::string& message) {
  if (axis.line == 0) {
    return Status::InvalidArgument(message);
  }
  return Status::InvalidArgument("line " + std::to_string(axis.line) + ": " + message);
}

}  // namespace

StatusOr<std::vector<ExperimentSpec>> ExpandSweeps(const ExperimentSpec& spec) {
  // Validate every axis before materializing anything: the product check
  // must fire on the *declared* sizes, never after a partial expansion has
  // already eaten the memory.
  size_t product = 1;
  for (size_t i = 0; i < spec.sweeps.size(); ++i) {
    const SweepAxis& axis = spec.sweeps[i];
    if (axis.values.empty()) {
      return AxisError(axis, "sweep axis '" + axis.key +
                                 "' has no values (it would expand to zero runs)");
    }
    for (size_t j = 0; j < i; ++j) {
      if (spec.sweeps[j].key == axis.key) {
        return AxisError(axis, "duplicate sweep axis '" + axis.key + "'");
      }
    }
    {
      ExperimentSpec probe = spec;
      if (!ApplyAxis(&probe, axis.key, axis.values.front())) {
        return AxisError(axis, "unknown sweep key '" + axis.key +
                                   "' (seed|f|nodes|recovery-us)");
      }
    }
    if (product > kMaxSweepExpansions / axis.values.size()) {
      return AxisError(axis, "sweep expands to more than " +
                                 std::to_string(kMaxSweepExpansions) +
                                 " runs (axis '" + axis.key + "' multiplies " +
                                 std::to_string(product) + " by " +
                                 std::to_string(axis.values.size()) + ")");
    }
    product *= axis.values.size();
  }

  std::vector<ExperimentSpec> out;
  out.reserve(product);
  ExperimentSpec base = spec;
  base.sweeps.clear();
  out.push_back(std::move(base));
  for (const SweepAxis& axis : spec.sweeps) {
    std::vector<ExperimentSpec> next;
    next.reserve(out.size() * axis.values.size());
    for (const ExperimentSpec& partial : out) {
      for (uint64_t value : axis.values) {
        ExperimentSpec expanded = partial;
        ApplyAxis(&expanded, axis.key, value);
        // Spec names cannot contain '/', so its presence marks "already
        // suffixed by an earlier axis".
        expanded.name += expanded.name.find('/') == std::string::npos ? "/" : ",";
        expanded.name += axis.key + "=" + std::to_string(value);
        next.push_back(std::move(expanded));
      }
    }
    out = std::move(next);
  }
  return out;
}

}  // namespace btr
