// Fingerprint-keyed, single-flight caches for the sweep service.
//
// A sweep expands into many jobs that differ only in their runtime seed or
// fault script: the expensive offline artifacts — the built Scenario and
// the compiled Strategy — are identical across them. Both are immutable
// once published (BtrSystem shares strategies behind
// shared_ptr<const Strategy> and never mutates through the pointer), so
// jobs can share one object instead of recompiling per job.
//
// SingleFlightCache is the concurrency contract: the first caller of a key
// runs the compile; concurrent callers of the same key block until it
// lands and share the result (counted as hits — they did not pay for a
// compile). Failures are never cached: the failing caller reports its
// Status, waiters retry as the new leader, and a later sweep against a
// fixed spec starts clean.
//
// Correctness does not depend on the cache at all. Planning is
// deterministic (PR 1's contract: identical strategies for any thread
// count), so a cache hit adopted via BtrSystem::AdoptStrategy is
// bit-identical to the strategy a cold Plan() would have built — the
// experiment-service oracle test fuzzes exactly this: every per-job report
// serializes byte-identical with the cache on and off.

#ifndef BTR_SRC_SPEC_STRATEGY_CACHE_H_
#define BTR_SRC_SPEC_STRATEGY_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "src/common/status.h"
#include "src/core/plan.h"
#include "src/workload/generators.h"

namespace btr {

// The identity of a compiled strategy: everything planning reads.
// Planner::Fingerprint already folds in the scenario and f; the other two
// fields are kept explicit so a cache entry's provenance can be checked
// (and dumped into results.btrr) without re-deriving them.
struct StrategyCacheKey {
  uint64_t planner_fingerprint = 0;   // Planner::Fingerprint (config + scenario)
  uint64_t scenario_fingerprint = 0;  // FingerprintScenario (topology + workload)
  uint32_t max_faults = 0;            // f

  bool operator<(const StrategyCacheKey& o) const {
    return std::tie(planner_fingerprint, scenario_fingerprint, max_faults) <
           std::tie(o.planner_fingerprint, o.scenario_fingerprint, o.max_faults);
  }
};

// Thread-safe single-flight memo map: GetOrCompute(key, compute) runs
// `compute` at most once per key among concurrent callers. Values are
// handed out as shared immutable pointers and retained for the cache's
// lifetime (a sweep's working set is its distinct (scenario, config)
// combinations — small by construction, bounded by kMaxSweepExpansions).
template <typename Key, typename V>
class SingleFlightCache {
 public:
  using ValuePtr = std::shared_ptr<const V>;

  struct Stats {
    uint64_t hits = 0;    // served a cached (or concurrently compiled) value
    uint64_t misses = 0;  // this caller ran the compile
  };

  // Returns the cached value for `key`, computing it via `compute` on the
  // first call. Concurrent callers of an in-flight key block and share the
  // leader's result; they count as hits. A failed compute is returned to
  // the leader verbatim and leaves no entry behind (one blocked waiter, if
  // any, takes over as the next leader). `was_hit`, when non-null, reports
  // whether this particular call paid for the compile.
  StatusOr<ValuePtr> GetOrCompute(const Key& key,
                                  const std::function<StatusOr<ValuePtr>()>& compute,
                                  bool* was_hit = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        break;  // no entry: this caller becomes the leader
      }
      if (it->second->ready) {
        ++stats_.hits;
        if (was_hit != nullptr) {
          *was_hit = true;
        }
        return it->second->value;
      }
      // A leader is compiling this key right now; wait for the outcome.
      // Re-find after waking: ready (hit) or erased (leader failed — loop
      // around and take over).
      cv_.wait(lock);
    }
    auto entry = std::make_shared<Entry>();
    entries_[key] = entry;
    ++stats_.misses;
    if (was_hit != nullptr) {
      *was_hit = false;
    }
    lock.unlock();
    StatusOr<ValuePtr> computed = compute();
    lock.lock();
    if (!computed.ok()) {
      entries_.erase(key);
      cv_.notify_all();
      return computed.status();
    }
    entry->value = std::move(computed).value();
    entry->ready = true;
    cv_.notify_all();
    return entry->value;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    bool ready = false;
    ValuePtr value;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, std::shared_ptr<Entry>> entries_;
  Stats stats_;
};

// Compiled strategies, keyed by (Planner::Fingerprint, scenario
// fingerprint, f). A hit is adopted with BtrSystem::AdoptStrategy, which
// re-checks the provenance stamp against the adopting system.
using StrategyCache = SingleFlightCache<StrategyCacheKey, Strategy>;

// Built scenarios, keyed by HashString(SerializeSpecScenario(...)) — two
// specs with equal scenario-section text build identical scenarios. Jobs
// copy the shared scenario (BtrSystem owns and may edit its own), so this
// memoizes the generator work, not the per-job object.
using ScenarioCache = SingleFlightCache<uint64_t, Scenario>;

}  // namespace btr

#endif  // BTR_SRC_SPEC_STRATEGY_CACHE_H_
