#include "src/spec/experiment_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>

#include "src/common/hash.h"
#include "src/common/thread_pool.h"
#include "src/core/strategy_text_internal.h"

namespace btr {

namespace {

using strategy_text::HexDigit;
using strategy_text::LineScanner;
using strategy_text::ParseU64;
using strategy_text::SplitFields;

uint64_t NowUs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

struct SweepCaches {
  StrategyCache strategies;
  ScenarioCache scenarios;
};

// One expanded job, start to finish. Failures land in rec->status; the
// caller keeps scheduling the rest of the fleet either way.
void RunJob(const ExperimentSpec& spec, bool use_cache, bool keep_report,
            SweepCaches* caches, SweepJobRecord* rec) {
  rec->name = spec.name;
  rec->max_faults = spec.max_faults;
  const uint64_t t0 = NowUs();

  // Scenario: memoized on the canonical scenario-section text. The job
  // takes a copy — BtrSystem owns (and under an edit phase, rewrites) its
  // scenario, so only the generator work is shared, never the object.
  Scenario scenario;
  if (use_cache) {
    const uint64_t key = HashString(SerializeSpecScenario(spec.scenario));
    StatusOr<ScenarioCache::ValuePtr> shared = caches->scenarios.GetOrCompute(
        key, [&]() -> StatusOr<ScenarioCache::ValuePtr> {
          StatusOr<Scenario> built = BuildScenario(spec.scenario);
          if (!built.ok()) {
            return built.status();
          }
          return std::make_shared<const Scenario>(std::move(built).value());
        });
    if (!shared.ok()) {
      rec->status = shared.status();
      return;
    }
    scenario = **shared;
  } else {
    StatusOr<Scenario> built = BuildScenario(spec.scenario);
    if (!built.ok()) {
      rec->status = built.status();
      return;
    }
    scenario = std::move(built).value();
  }

  BtrSystem system(std::move(scenario), MakeBtrConfig(spec));
  rec->planner_fingerprint = system.planner().Fingerprint();
  rec->scenario_fingerprint =
      FingerprintScenario(system.scenario().topology, system.scenario().workload);

  // Strategy: single-flight on the full planning identity. The miss leader
  // plans on its own system and publishes the shared immutable strategy;
  // everyone else (including callers that blocked on the in-flight
  // compile) adopts it after BtrSystem's provenance check.
  if (use_cache) {
    const StrategyCacheKey key{rec->planner_fingerprint, rec->scenario_fingerprint,
                               spec.max_faults};
    bool hit = false;
    StatusOr<StrategyCache::ValuePtr> strategy = caches->strategies.GetOrCompute(
        key,
        [&]() -> StatusOr<StrategyCache::ValuePtr> {
          Status planned = system.Plan();
          if (!planned.ok()) {
            return planned;
          }
          return system.shared_strategy();
        },
        &hit);
    if (!strategy.ok()) {
      rec->status = strategy.status();
      return;
    }
    rec->cache_hit = hit;
    if (hit) {
      Status adopted = system.AdoptStrategy(*strategy);
      if (!adopted.ok()) {
        rec->status = adopted;
        return;
      }
    }
  } else {
    Status planned = system.Plan();
    if (!planned.ok()) {
      rec->status = planned;
      return;
    }
  }
  const uint64_t t1 = NowUs();
  rec->plan_us = t1 - t0;
  rec->modes = system.strategy().mode_count();
  rec->strategy_format = system.strategy().provenance().source_format;

  StatusOr<ExperimentReport> report = RunExperimentPhases(system, spec);
  rec->run_us = NowUs() - t1;
  if (!report.ok()) {
    rec->status = report.status();
    return;
  }
  for (const RunReport& phase : report->phases) {
    rec->correct += phase.correctness.correct_instances;
    rec->expected += phase.correctness.total_instances;
    rec->worst_recovery = std::max(rec->worst_recovery, phase.correctness.max_recovery);
    rec->violated = rec->violated || phase.correctness.btr_violated;
    rec->events += phase.events_executed;
  }
  rec->fingerprint = FingerprintExperimentReport(*report);
  if (keep_report) {
    rec->report = std::move(report).value();
  }
}

}  // namespace

StatusOr<SweepServiceReport> RunSweepService(const ExperimentSpec& spec,
                                             const ServiceOptions& options) {
  StatusOr<std::vector<ExperimentSpec>> expanded = ExpandSweeps(spec);
  if (!expanded.ok()) {
    return expanded.status();
  }

  SweepServiceReport report;
  report.spec_name = spec.name;
  report.jobs.resize(expanded->size());

  size_t lanes = options.jobs;
  if (lanes == 0) {
    lanes = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  lanes = std::max<size_t>(1, std::min(lanes, expanded->size()));
  report.lanes = lanes;

  SweepCaches caches;
  const uint64_t t0 = NowUs();
  if (lanes == 1 || ThreadPool::OnWorkerThread()) {
    // Sequential path: every job inline on the calling thread, in
    // expansion order — with a cold cache this is the pre-service sweep
    // loop, byte for byte. Also taken for a service invoked *from* a pool
    // worker (a sweep inside a sweep): lanes would run inline there
    // anyway, so we skip reserving workers nobody would use.
    for (size_t i = 0; i < expanded->size(); ++i) {
      RunJob((*expanded)[i], options.cache, options.keep_reports, &caches,
             &report.jobs[i]);
    }
  } else {
    // `lanes` pool jobs pull indices from a shared counter. Reserve — not
    // merely ensure — that many workers: long-lived occupants (another
    // sweep, shard loops) may hold pool threads, and a lane that never
    // starts would serialize the fleet. Everything nested under a job
    // (planner waves, sharded simulation) runs inline on its lane.
    std::atomic<size_t> next{0};
    ThreadPool& pool = ThreadPool::Shared();
    pool.ReserveWorkers(lanes);
    pool.ParallelFor(lanes, [&](size_t) {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= expanded->size()) {
          return;
        }
        RunJob((*expanded)[i], options.cache, options.keep_reports, &caches,
               &report.jobs[i]);
      }
    });
  }
  report.wall_us = NowUs() - t0;

  for (const SweepJobRecord& job : report.jobs) {
    if (!job.status.ok()) {
      ++report.failures;
      continue;
    }
    report.total_events += job.events;
    report.combined_fingerprint = report.combined_fingerprint * 1099511628211ULL ^
                                  job.fingerprint;
  }
  report.strategy_cache = caches.strategies.stats();
  report.scenario_cache = caches.scenarios.stats();

  if (!options.results_path.empty()) {
    Status appended = AppendSweepResults(options.results_path, report, options);
    if (!appended.ok()) {
      return appended;
    }
  }
  return report;
}

std::string SerializeSweepResults(const SweepServiceReport& report,
                                  const ServiceOptions& options) {
  std::string out = "BTRR 1\n";
  out += "SWEEP " + report.spec_name + " jobs=" + std::to_string(report.lanes) +
         " cache=" + (options.cache ? "1" : "0") +
         " runs=" + std::to_string(report.jobs.size()) +
         " failures=" + std::to_string(report.failures) +
         " combined-fp=" + Hex16(report.combined_fingerprint) +
         " strategy-hits=" + std::to_string(report.strategy_cache.hits) +
         " strategy-misses=" + std::to_string(report.strategy_cache.misses) +
         " wall-us=" + std::to_string(report.wall_us) + '\n';
  for (const SweepJobRecord& job : report.jobs) {
    out += "JOB " + job.name + " ok=" + (job.status.ok() ? "1" : "0") +
           " fp=" + Hex16(job.fingerprint) +
           " planner-fp=" + Hex16(job.planner_fingerprint) +
           " scenario-fp=" + Hex16(job.scenario_fingerprint) +
           " f=" + std::to_string(job.max_faults) +
           " fmt=v" + std::to_string(job.strategy_format) +
           " cache=" + (job.cache_hit ? "hit" : "miss") +
           " plan-us=" + std::to_string(job.plan_us) +
           " run-us=" + std::to_string(job.run_us) + '\n';
  }
  out += "END\n";
  return out;
}

Status AppendSweepResults(const std::string& path, const SweepServiceReport& report,
                          const ServiceOptions& options) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    return Status::InvalidArgument("cannot open results store '" + path + "'");
  }
  out << SerializeSweepResults(report, options);
  out.flush();
  if (!out) {
    return Status::Internal("write to results store '" + path + "' failed");
  }
  return Status::Ok();
}

namespace {

Status LineError(size_t line_no, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " + message);
}

// "key=value" with canonical decimal value.
bool TakeKeyU64(std::string_view field, std::string_view key, uint64_t* value) {
  if (field.size() <= key.size() + 1 || field.substr(0, key.size()) != key ||
      field[key.size()] != '=') {
    return false;
  }
  return ParseU64(field.substr(key.size() + 1), value);
}

// "key=hhhh..." with exactly 16 lowercase hex digits.
bool TakeKeyHex16(std::string_view field, std::string_view key, uint64_t* value) {
  if (field.size() != key.size() + 1 + 16 || field.substr(0, key.size()) != key ||
      field[key.size()] != '=') {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 0; i < 16; ++i) {
    const int digit = HexDigit(field[key.size() + 1 + i]);
    if (digit < 0) {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *value = v;
  return true;
}

bool TakeKeyBool(std::string_view field, std::string_view key, bool* value) {
  uint64_t v = 0;
  if (!TakeKeyU64(field, key, &v) || v > 1) {
    return false;
  }
  *value = (v == 1);
  return true;
}

}  // namespace

StatusOr<std::vector<SweepResultsRecord>> ParseResultsStore(const std::string& text) {
  std::vector<SweepResultsRecord> out;
  LineScanner scan(text);
  std::string_view line;
  bool terminated = false;
  size_t line_no = 0;
  std::vector<std::string_view> fields;

  enum class State { kHeader, kSweep, kJobs };
  State state = State::kHeader;
  SweepResultsRecord current;

  while (scan.Next(&line, &terminated)) {
    ++line_no;
    if (!terminated) {
      return LineError(line_no, "results store truncated (unterminated line)");
    }
    if (!SplitFields(line, &fields)) {
      return LineError(line_no, "malformed line");
    }
    switch (state) {
      case State::kHeader: {
        if (fields.size() != 2 || fields[0] != "BTRR" || fields[1] != "1") {
          return LineError(line_no, "expected 'BTRR 1' block header");
        }
        current = SweepResultsRecord();
        state = State::kSweep;
        break;
      }
      case State::kSweep: {
        uint64_t lanes = 0;
        uint64_t runs = 0;
        uint64_t failures = 0;
        if (fields.size() != 10 || fields[0] != "SWEEP" ||
            !TakeKeyU64(fields[2], "jobs", &lanes) ||
            !TakeKeyBool(fields[3], "cache", &current.cache) ||
            !TakeKeyU64(fields[4], "runs", &runs) ||
            !TakeKeyU64(fields[5], "failures", &failures) ||
            !TakeKeyHex16(fields[6], "combined-fp", &current.combined_fingerprint) ||
            !TakeKeyU64(fields[7], "strategy-hits", &current.strategy_hits) ||
            !TakeKeyU64(fields[8], "strategy-misses", &current.strategy_misses) ||
            !TakeKeyU64(fields[9], "wall-us", &current.wall_us)) {
          return LineError(line_no, "malformed SWEEP record");
        }
        current.spec_name = std::string(fields[1]);
        current.lanes = static_cast<size_t>(lanes);
        current.runs = static_cast<size_t>(runs);
        current.failures = static_cast<size_t>(failures);
        state = State::kJobs;
        break;
      }
      case State::kJobs: {
        if (fields.size() == 1 && fields[0] == "END") {
          if (current.jobs.size() != current.runs) {
            return LineError(line_no, "SWEEP declared " + std::to_string(current.runs) +
                                          " runs but block has " +
                                          std::to_string(current.jobs.size()) +
                                          " JOB records");
          }
          out.push_back(std::move(current));
          state = State::kHeader;
          break;
        }
        SweepResultsRecord::Job job;
        uint64_t f = 0;
        if ((fields.size() != 10 && fields.size() != 11) || fields[0] != "JOB" ||
            !TakeKeyBool(fields[2], "ok", &job.ok) ||
            !TakeKeyHex16(fields[3], "fp", &job.fingerprint) ||
            !TakeKeyHex16(fields[4], "planner-fp", &job.planner_fingerprint) ||
            !TakeKeyHex16(fields[5], "scenario-fp", &job.scenario_fingerprint) ||
            !TakeKeyU64(fields[6], "f", &f) || f > UINT32_MAX) {
          return LineError(line_no, "malformed JOB record");
        }
        // fmt= postdates the first stores: records without it parse as
        // format 0 so appended history stays readable.
        size_t i = 7;
        if (fields.size() == 11) {
          std::string_view fmt = fields[7];
          uint64_t version = 0;
          if (fmt.substr(0, 5) != "fmt=v" || !ParseU64(fmt.substr(5), &version) ||
              version > UINT32_MAX) {
            return LineError(line_no, "malformed JOB record");
          }
          job.strategy_format = static_cast<uint32_t>(version);
          i = 8;
        }
        if ((fields[i] != "cache=hit" && fields[i] != "cache=miss") ||
            !TakeKeyU64(fields[i + 1], "plan-us", &job.plan_us) ||
            !TakeKeyU64(fields[i + 2], "run-us", &job.run_us)) {
          return LineError(line_no, "malformed JOB record");
        }
        job.name = std::string(fields[1]);
        job.max_faults = static_cast<uint32_t>(f);
        job.cache_hit = (fields[i] == "cache=hit");
        current.jobs.push_back(std::move(job));
        break;
      }
    }
  }
  if (state != State::kHeader) {
    return LineError(line_no, "results store truncated (unclosed block)");
  }
  return out;
}

}  // namespace btr
