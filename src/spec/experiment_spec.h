// Experiments as data: the .btrx experiment-spec format.
//
// The paper's lifecycle — plan offline, deploy, run, keep the strategy
// current as the platform changes — is driven here from a declarative text
// file instead of a hand-compiled C++ generator. One .btrx file describes
// an experiment end-to-end:
//
//   * the scenario: a named generator ("avionics", "scada", "convoy",
//     "convoy-mobile", "lossy-mesh", "random") with parameters — the radio
//     kinds take per-link loss (loss-pm=) and duty-cycle windows — or an
//     inline system built from NODE-less LINK / TASK / FLOW records, whose
//     LINK records accept the same radio keys;
//   * the BTR configuration (fault bound f, recovery bound R, seed);
//   * a timed script of phases, each a simulated run: fault injections
//     (including transient faults that heal at `until-us`) and mid-run
//     system edits — a StrategyDelta as data, disseminated over the
//     simulated network as sliced patches and committed at the phase
//     boundary (see BtrSystem::ApplyDelta);
//   * parameter sweep axes expanded into seeded runs by the sweep runner.
//
// The format is line-oriented with the same parser discipline as
// strategy_io: single-space-separated fields, canonical decimal integers,
// and strict errors ("line N: ...") on anything malformed — truncation,
// unknown record kinds, out-of-range node/task references. Parsing accepts
// comment lines (first non-blank char '#'), blank lines, and leading
// indentation; SerializeExperimentSpec emits none of them, and
// Parse(Serialize(spec)) round-trips canonically:
// Serialize(Parse(Serialize(s))) == Serialize(s) byte-for-byte (fuzzed in
// tests/spec_test.cc).
//
// All times in the format are integer microseconds (keys end in -us); the
// in-memory model stores nanoseconds, so spec-expressible instants have
// 1 us resolution. An annotated example lives in README.md ("Experiments
// as data") and examples/specs/.

#ifndef BTR_SRC_SPEC_EXPERIMENT_SPEC_H_
#define BTR_SRC_SPEC_EXPERIMENT_SPEC_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/adversary.h"
#include "src/core/strategy_delta.h"
#include "src/net/dissemination.h"
#include "src/workload/dataflow.h"

namespace btr {

// The scenario section: which system the experiment runs on.
struct SpecScenario {
  enum class Kind {
    kAvionics,
    kScada,
    kConvoy,
    kRandom,
    kInline,
    kConvoyMobile,
    kLossyMesh,
  };
  static constexpr int kKindCount = 7;
  Kind kind = Kind::kAvionics;

  // Generator parameter: compute nodes (avionics/scada/random), total
  // nodes (convoy/convoy-mobile: vehicles = nodes / 2), inline: the full
  // node count.
  uint64_t nodes = 6;

  // "random" generator only (0 = generator default).
  uint64_t scenario_seed = 1;
  uint64_t layers = 0;
  uint64_t tasks_per_layer = 0;
  SimDuration random_period = 0;

  // Radio-link dynamics, "convoy-mobile" / "lossy-mesh" only (SCENARIO
  // loss-pm= / duty-on-us= / duty-period-us=). loss_pm is per-mille so the
  // format stays integer-only; 0 = generator default. The duty keys come
  // as a pair: transmit duty_on out of every duty_period.
  uint32_t loss_pm = 0;
  SimDuration duty_on = 0;
  SimDuration duty_period = 0;

  // Inline records. Node ids are 0..nodes-1; task identity is by name.
  SimDuration period = Milliseconds(10);
  struct Link {
    std::string name;
    std::vector<uint32_t> nodes;
    int64_t bandwidth_bps = 0;
    SimDuration propagation = 0;
    // Optional radio dynamics (loss-pm= / duty-on-us= / duty-period-us=),
    // same semantics as the SCENARIO-level keys but per link.
    uint32_t loss_pm = 0;
    SimDuration duty_on = 0;
    SimDuration duty_period = 0;
  };
  struct Task {
    std::string name;
    TaskKind kind = TaskKind::kCompute;
    SimDuration wcet = 0;
    Criticality criticality = Criticality::kMedium;
    uint32_t state_bytes = 0;          // compute only
    uint32_t pinned_node = 0;          // source/sink only
    SimDuration deadline = 0;          // sink only
  };
  struct Flow {
    std::string from;
    std::string to;
    uint32_t bytes = 0;
  };
  std::vector<Link> links;
  std::vector<Task> tasks;
  std::vector<Flow> flows;
};

// One FAULT record. `critical_primary` replaces the node id with the
// symbolic victim "critical-primary": the host of the most critical
// compute task's primary replica in the fault-free plan, resolved after
// planning (so scripts can say "compromise whoever matters most" without
// knowing the placement).
struct SpecFault {
  FaultInjection injection;
  bool critical_primary = false;
};

// One PHASE: a simulated run of `periods` workload periods. Faults are
// per-phase (a persistent compromise is restated in the next phase, with
// at-us=0). An edit batch, if present, is disseminated mid-run at
// `edit_at` and the rebuilt strategy takes over at the phase boundary.
struct SpecPhase {
  uint64_t periods = 0;
  std::vector<SpecFault> faults;
  SimTime edit_at = -1;  // < 0: no edit batch in this phase
  StrategyDelta edit;

  bool has_edit() const { return edit_at >= 0; }
};

// One SWEEP axis: key in {"seed", "f", "nodes", "recovery-us"}. The sweep
// runner expands axes as a cartesian product (see ExpandSweeps).
struct SweepAxis {
  std::string key;
  std::vector<uint64_t> values;
  // 1-based source line of the SWEEP record (0 for hand-built axes); not
  // serialized. ExpandSweeps' hardening errors cite it so a rejected sweep
  // (empty axis, duplicate key, cartesian blowup) points at its spec line.
  uint32_t line = 0;
};

struct ExperimentSpec {
  std::string name = "experiment";
  SpecScenario scenario;
  uint32_t max_faults = 1;
  SimDuration recovery_bound = Milliseconds(500);
  uint64_t seed = 1;
  // Heartbeats share the control class with install traffic. With
  // dissem=gossip the rollout paces itself around the heartbeat cadence, so
  // scripts with rollouts can keep them on; unicast rollouts may still want
  // heartbeats=0 to avoid self-convicting the distributor.
  bool heartbeats = true;
  // Simulation shards (CONFIG shards=, parallel data plane). 0 = auto.
  // Purely a speed knob: reports are byte-identical for every value.
  uint32_t shards = 0;
  // Install-plane dissemination (CONFIG dissem=unicast|gossip).
  DissemMode dissem = DissemMode::kUnicast;
  // Trickle minimum beacon interval (CONFIG beacon-us=). 0 = one workload
  // period, resolved at rollout time.
  SimDuration beacon_period = 0;
  // Trickle suppression constant (CONFIG suppress-k=). 0 = default (1).
  uint32_t suppress_k = 0;
  // Gossip pacing budget (CONFIG pace-fraction=): the fraction of a
  // workload period one chunk's serialization time may occupy, stored in
  // per-mille so the format stays integer-exact. 0 = library default.
  uint32_t pace_mille = 0;
  // Strategy shipment wire format (CONFIG wire=v2|v4): 0 = canonical text
  // (v2), 4 = v4 binary images (see src/fmt/strategy_binary.h).
  uint32_t wire_version = 0;
  std::vector<SweepAxis> sweeps;
  std::vector<SpecPhase> phases;
};

// The SCENARIO record's kind token ("avionics", "scada", "convoy",
// "random", "inline", "convoy-mobile", "lossy-mesh") and its inverse — the
// one name registry the serializer, parser, runner, and CLI share.
const char* ScenarioKindName(SpecScenario::Kind kind);
std::optional<SpecScenario::Kind> ParseScenarioKind(std::string_view name);

// The pace-fraction= value grammar: "1", or "0." followed by one to three
// digits with no trailing zero — the unique canonical spelling of every
// per-mille value in (0, 1]. Returns false on any other spelling, so the
// canonical round-trip holds with no normalization pass.
bool ParsePaceFraction(std::string_view text, uint32_t* mille);
std::string PaceFractionText(uint32_t mille);

// Canonical serialization: fixed section and key order, optional keys only
// when they deviate from defaults, no comments. The exact inverse of
// ParseExperimentSpec over its own output.
std::string SerializeExperimentSpec(const ExperimentSpec& spec);

// Canonical serialization of the scenario section alone (the SCENARIO
// record plus inline LINK/TASK/FLOW records). Two specs with equal section
// texts build identical scenarios, so the sweep service memoizes scenario
// builds on a hash of this string.
std::string SerializeSpecScenario(const SpecScenario& scenario);

// Strict parser. Errors carry 1-based line numbers and never crash on
// malformed input (fuzzed with a corruption sweep under ASan/UBSan).
StatusOr<ExperimentSpec> ParseExperimentSpec(const std::string& text);

}  // namespace btr

#endif  // BTR_SRC_SPEC_EXPERIMENT_SPEC_H_
