// Executes a parsed ExperimentSpec through the BtrSystem lifecycle.
//
// RunExperiment is the one entry point behind `btrsim --spec`: it builds
// the scenario (generator or inline records), plans, then replays the
// spec's timed script phase by phase — faults injected, mid-run edit
// batches incrementally rebuilt / diffed to per-node patches / rolled out
// over the simulated network (BtrSystem::ApplyDelta + Run) — and returns
// one RunReport per phase. Everything is deterministic: the experiment
// fingerprint of a spec-driven run is byte-identical to the same script
// assembled through the raw C++ API (pinned by tests/spec_test.cc).

#ifndef BTR_SRC_SPEC_EXPERIMENT_RUNNER_H_
#define BTR_SRC_SPEC_EXPERIMENT_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/btr_system.h"
#include "src/spec/experiment_spec.h"
#include "src/workload/generators.h"

namespace btr {

// Materializes the spec's scenario section: named generators resolve
// through MakeNamedScenario; inline records build a Topology/Dataflow
// directly (references were validated at parse time, structural validity
// is re-checked by BtrSystem::Plan).
StatusOr<Scenario> BuildScenario(const SpecScenario& spec);

// Maps the spec's config section onto BtrConfig.
BtrConfig MakeBtrConfig(const ExperimentSpec& spec);

// The fault-free-plan host of the most critical compute task's primary
// replica — the resolution of a FAULT record's symbolic
// node=critical-primary victim. Call after Plan().
NodeId ResolveCriticalPrimary(const BtrSystem& system);

struct ExperimentReport {
  std::string name;
  std::vector<RunReport> phases;
};

// Deterministic textual dump (the per-phase SerializeRunReport dumps under
// phase headers) and its 64-bit fingerprint; the spec-vs-C++ equivalence
// tests and the sweep runner's BENCH_JSON row both use the fingerprint.
std::string SerializeExperimentReport(const ExperimentReport& report);
uint64_t FingerprintExperimentReport(const ExperimentReport& report);

// Observation points for CLIs (btrsim prints progress and runs --analyze
// from after_plan; both hooks may be empty).
struct ExperimentHooks {
  std::function<void(const BtrSystem&)> after_plan;
  std::function<void(size_t phase, const BtrSystem&, const RunReport&)> after_phase;
};

// Runs the spec's script (ignoring sweep axes — see ExpandSweeps). Faults
// are per-phase; an edit batch disseminates mid-run at its at-us and the
// rebuilt strategy takes over at the phase boundary.
StatusOr<ExperimentReport> RunExperiment(const ExperimentSpec& spec,
                                         const ExperimentHooks& hooks = {});

// The phase loop of RunExperiment on a system that is already planned (or
// has adopted a cached strategy — see ExperimentService). Calls
// hooks.after_plan first, then replays every phase. RunExperiment is
// exactly BuildScenario + Plan() + this, so a cache-adopted run serializes
// byte-identical to a cold one.
StatusOr<ExperimentReport> RunExperimentPhases(BtrSystem& system,
                                               const ExperimentSpec& spec,
                                               const ExperimentHooks& hooks = {});

// Hard ceiling on the cartesian product ExpandSweeps will materialize; a
// larger sweep is a spec bug (or a job for a sharded results pipeline),
// not a vector to silently allocate.
inline constexpr size_t kMaxSweepExpansions = 100000;

// Expands the spec's sweep axes into their cartesian product: one spec per
// combination, sweeps cleared, name suffixed "/key=value,...", axis keys
// applied to the config (seed, f, nodes, recovery-us). A spec without
// axes expands to itself. Hardened: an unknown or duplicate axis key, an
// axis with no values, or a product beyond kMaxSweepExpansions is an
// error citing the axis's spec line (when it was parsed from text) —
// never a silent cartesian blowup.
StatusOr<std::vector<ExperimentSpec>> ExpandSweeps(const ExperimentSpec& spec);

}  // namespace btr

#endif  // BTR_SRC_SPEC_EXPERIMENT_RUNNER_H_
