// Packed 64-bit keys for the runtime's flat hash maps.
//
// All per-period runtime state is keyed by small-id tuples — (task, period),
// (node, period), (task, replica, period), (node, node, period). Packing the
// tuple into one uint64 gives the flat maps a trivially hashable key and
// keeps every call site building keys the same way (instead of ad-hoc
// make_pair/make_tuple). The period always occupies the low 40 bits, so one
// helper recovers it for retention GC regardless of which packing produced
// the key.
//
// Ranges (debug-asserted): ids < 2^20 where 20 bits are given, < 2^12 for
// node pairs, replica < 2^4, period < 2^40 (~35 years of 1ms periods).

#ifndef BTR_SRC_COMMON_PACKED_KEY_H_
#define BTR_SRC_COMMON_PACKED_KEY_H_

#include <cassert>
#include <cstdint>

namespace btr {

inline constexpr int kPackedPeriodBits = 40;
inline constexpr uint64_t kPackedPeriodMask = (uint64_t{1} << kPackedPeriodBits) - 1;

// (id, period): 24-bit id | 40-bit period. For input buffers keyed by
// producer task and heartbeat sets keyed by node.
constexpr uint64_t PackIdPeriod(uint32_t id, uint64_t period) {
  assert(id < (uint32_t{1} << 24) && period <= kPackedPeriodMask);
  return (static_cast<uint64_t>(id) << kPackedPeriodBits) | period;
}

// (task, replica, period): 20-bit task | 4-bit replica | 40-bit period. For
// the checker's replica-record buffer.
constexpr uint64_t PackTaskReplicaPeriod(uint32_t task, uint32_t replica, uint64_t period) {
  assert(task < (uint32_t{1} << 20) && replica < (uint32_t{1} << 4) &&
         period <= kPackedPeriodMask);
  return (static_cast<uint64_t>(task) << (kPackedPeriodBits + 4)) |
         (static_cast<uint64_t>(replica) << kPackedPeriodBits) | period;
}

// (lo, hi, period): 12-bit node | 12-bit node | 40-bit period. For the
// dedup set of path declarations (callers pass endpoints in sorted order).
constexpr uint64_t PackNodePairPeriod(uint32_t lo, uint32_t hi, uint64_t period) {
  assert(lo < (uint32_t{1} << 12) && hi < (uint32_t{1} << 12) && period <= kPackedPeriodMask);
  return (static_cast<uint64_t>(lo) << (kPackedPeriodBits + 12)) |
         (static_cast<uint64_t>(hi) << kPackedPeriodBits) | period;
}

// The period component of any key built by the packers above.
constexpr uint64_t PeriodOfPackedKey(uint64_t key) { return key & kPackedPeriodMask; }

}  // namespace btr

#endif  // BTR_SRC_COMMON_PACKED_KEY_H_
