#include "src/common/thread_pool.h"

#include <algorithm>

namespace btr {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  thread_count_ = threads;
  if (threads == 1) {
    return;  // inline mode
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with drained queue
      }
      job = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;
      }
      --in_flight_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (workers_.empty()) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_ += count;
    for (size_t i = 0; i < count; ++i) {
      queue_.push([&fn, i] { fn(i); });
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = nullptr;
    std::swap(error, first_error_);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace btr
