#include "src/common/thread_pool.h"

#include <algorithm>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace btr {

struct ThreadPool::Ticket::Batch {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = 0;
  std::exception_ptr first_error;
};

struct ThreadPool::Job {
  std::shared_ptr<Ticket::Batch> batch;
  std::shared_ptr<std::function<void(size_t)>> fn;
  size_t index = 0;
};

namespace {

// Set for the lifetime of every pool worker thread (any pool instance):
// nested Dispatch calls run inline instead of deadlocking the pool, and the
// sharded simulator checks it to pick its sequential window path.
thread_local bool tls_on_pool_worker = false;

void PinToCore(size_t core) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  // Best effort: containers with restricted affinity masks may refuse.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

// Executes one job and retires it against its batch.
void ThreadPool::ExecuteAndRetire(Job& job) {
  std::exception_ptr error;
  try {
    (*job.fn)(job.index);
  } catch (...) {
    error = std::current_exception();
  }
  auto& batch = *job.batch;
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(batch.mu);
    if (error != nullptr && batch.first_error == nullptr) {
      batch.first_error = error;
    }
    last = (--batch.remaining == 0);
  }
  if (last) {
    batch.cv.notify_all();
  }
}

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  thread_count_ = threads;
  if (threads == 1) {
    return;  // inline mode until EnsureWorkers grows the pool
  }
  std::lock_guard<std::mutex> lock(mu_);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    SpawnWorkerLocked();
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: worker threads may outlive every static destructor.
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(std::max<size_t>(1, std::thread::hardware_concurrency()));
    p->pin_workers_ = std::thread::hardware_concurrency() > 1;
    return p;
  }();
  return *pool;
}

size_t ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

size_t ThreadPool::busy_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_;
}

bool ThreadPool::OnWorkerThread() { return tls_on_pool_worker; }

void ThreadPool::SpawnWorkerLocked() {
  const size_t index = workers_.size();
  workers_.emplace_back([this, index] { WorkerLoop(index); });
}

void ThreadPool::EnsureWorkers(size_t workers) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < workers) {
    SpawnWorkerLocked();
  }
  thread_count_ = std::max(thread_count_, workers_.size());
}

void ThreadPool::ReserveWorkers(size_t workers) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() - busy_ < workers) {
    SpawnWorkerLocked();
  }
  thread_count_ = std::max(thread_count_, workers_.size());
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_on_pool_worker = true;
  if (pin_workers_) {
    const size_t cores = std::max<size_t>(1, std::thread::hardware_concurrency());
    PinToCore(worker_index % cores);
  }
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with drained queue
      }
      job = std::move(queue_.front());
      queue_.pop();
      ++busy_;
    }
    ExecuteAndRetire(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
    }
  }
}

ThreadPool::Ticket ThreadPool::Dispatch(size_t count, std::function<void(size_t)> fn) {
  Ticket ticket;
  ticket.batch_ = std::make_shared<Ticket::Batch>();
  ticket.batch_->remaining = count;
  if (count == 0) {
    return ticket;
  }
  auto shared_fn = std::make_shared<std::function<void(size_t)>>(std::move(fn));
  // Nested use: a batch dispatched from a pool worker runs inline. Every
  // worker may be occupied by a long-running job that is itself about to
  // block in Ticket::Wait (the sweep service runs whole experiment jobs as
  // pool jobs, and each one plans in waves), so enqueueing here can starve
  // forever — execute-on-caller is the deadlock-free degenerate schedule
  // and keeps the batch's sequential semantics.
  bool inline_mode = OnWorkerThread();
  {
    std::lock_guard<std::mutex> lock(mu_);
    inline_mode = inline_mode || workers_.empty();
    if (!inline_mode) {
      for (size_t i = 0; i < count; ++i) {
        queue_.push(Job{ticket.batch_, shared_fn, i});
      }
    }
  }
  if (inline_mode) {
    for (size_t i = 0; i < count; ++i) {
      Job job{ticket.batch_, shared_fn, i};
      ExecuteAndRetire(job);
    }
    return ticket;
  }
  if (count == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
  return ticket;
}

void ThreadPool::Ticket::Wait() {
  if (batch_ == nullptr) {
    return;
  }
  std::unique_lock<std::mutex> lock(batch_->mu);
  batch_->cv.wait(lock, [this] { return batch_->remaining == 0; });
  if (batch_->first_error != nullptr) {
    std::exception_ptr error = nullptr;
    std::swap(error, batch_->first_error);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  Dispatch(count, fn).Wait();
}

}  // namespace btr
