// Integer math helpers for periodic scheduling (hyperperiods, ceilings).

#ifndef BTR_SRC_COMMON_MATH_UTIL_H_
#define BTR_SRC_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace btr {

inline int64_t Gcd64(int64_t a, int64_t b) { return std::gcd(a, b); }

inline int64_t Lcm64(int64_t a, int64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return a / std::gcd(a, b) * b;
}

// Least common multiple of all values; the hyperperiod of a periodic task set.
inline int64_t LcmAll(const std::vector<int64_t>& values) {
  int64_t acc = 1;
  for (int64_t v : values) {
    acc = Lcm64(acc, v);
  }
  return acc;
}

// Ceiling division for non-negative integers.
inline int64_t CeilDiv(int64_t num, int64_t den) { return (num + den - 1) / den; }

// Rounds `t` up to the next multiple of `step` (step > 0).
inline int64_t RoundUp(int64_t t, int64_t step) { return CeilDiv(t, step) * step; }

}  // namespace btr

#endif  // BTR_SRC_COMMON_MATH_UTIL_H_
