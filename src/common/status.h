// Minimal Status / StatusOr<T> error-propagation types.
//
// The BTR libraries do not throw across library boundaries (per the os-systems
// style guides); fallible operations such as planning return StatusOr.

#ifndef BTR_SRC_COMMON_STATUS_H_
#define BTR_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace btr {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kInfeasible,        // planner: no feasible plan/schedule exists
  kResourceExhausted, // ran out of CPU/bandwidth/budget
  kFailedPrecondition,
  kInternal,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace btr

#endif  // BTR_SRC_COMMON_STATUS_H_
