// Thread-local execution context for the sharded data plane.
//
// The parallel simulator runs each shard's event window on its own worker
// thread. Code deep inside the data plane (Network guardians, BlockPool
// frees, log prefixes, Simulator::Now()) needs to know which shard — and
// which simulated actor — the current thread is executing for, without
// threading that through every call signature. This tiny TLS record carries
// it. On the exclusive path (driver events, single-shard runs, planning,
// tests) the context stays at its defaults: shard 0, driver actor,
// worker == false.

#ifndef BTR_SRC_COMMON_EXEC_CONTEXT_H_
#define BTR_SRC_COMMON_EXEC_CONTEXT_H_

#include <cstdint>

#include "src/common/types.h"

namespace btr {

// Sentinel actor id for driver / harness events (fault injections, period
// ticks, install shipping). Sorts before every node actor in the canonical
// event order.
inline constexpr uint32_t kDriverActor = 0xFFFFFFFFu;

struct ExecContext {
  uint32_t shard = 0;           // shard whose window this thread is running
  uint32_t actor = kDriverActor;  // simulated actor of the executing event
  bool worker = false;          // true only inside a shard window
  const SimTime* now = nullptr;  // shard-local clock while worker == true
};

inline ExecContext& ThisThreadExec() {
  thread_local ExecContext ctx;
  return ctx;
}

// RAII save/restore for the coordinator thread, which flips between the
// exclusive driver context and running shard windows inline.
class ScopedExecContext {
 public:
  explicit ScopedExecContext(const ExecContext& next) : saved_(ThisThreadExec()) {
    ThisThreadExec() = next;
  }
  ~ScopedExecContext() { ThisThreadExec() = saved_; }

  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  ExecContext saved_;
};

}  // namespace btr

#endif  // BTR_SRC_COMMON_EXEC_CONTEXT_H_
