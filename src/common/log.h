// Leveled logging for the simulator.
//
// Logging is off by default (benchmarks would drown otherwise); tests and
// examples can raise the level. Messages carry the simulated time when the
// logger has been attached to a simulation.

#ifndef BTR_SRC_COMMON_LOG_H_
#define BTR_SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

#include "src/common/types.h"

namespace btr {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

// Process-wide minimum level. Defaults to kOff.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Simulated-time source for log prefixes; set by Simulator, may be null.
// Thread-local: concurrent simulators (one per sweep-service job) each
// register their clock on their own thread without racing.
void SetLogTimeSource(const SimTime* now);

bool LogEnabled(LogLevel level);
void LogLine(LogLevel level, const std::string& component, const std::string& message);

// Stream-style helper: BTR_LOG(kDebug, "planner") << "mode " << i;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { LogLine(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace btr

#define BTR_LOG(level, component)            \
  if (!::btr::LogEnabled(::btr::LogLevel::level)) { \
  } else                                     \
    ::btr::LogStream(::btr::LogLevel::level, (component))

#endif  // BTR_SRC_COMMON_LOG_H_
