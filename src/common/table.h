// ASCII table rendering for benchmark output.
//
// Every bench binary prints the rows of the experiment it reproduces using
// this formatter, so EXPERIMENTS.md and bench output line up visually.

#ifndef BTR_SRC_COMMON_TABLE_H_
#define BTR_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace btr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; cells are stringified by the caller (see Cell helpers below).
  void AddRow(std::vector<std::string> cells);

  // Renders with column widths fitted to content, pipe-separated.
  std::string Render() const;

  size_t RowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers for table cells.
std::string CellInt(int64_t v);
std::string CellDouble(double v, int precision = 3);
// Scales to a human unit (ns/us/ms/s) from nanoseconds.
std::string CellDuration(double nanos);
// Scales to B/KB/MB.
std::string CellBytes(double bytes);
std::string CellPercent(double fraction, int precision = 1);

}  // namespace btr

#endif  // BTR_SRC_COMMON_TABLE_H_
