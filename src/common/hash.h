// 64-bit content hashing used for message digests and golden-run comparison.
//
// This is *not* a cryptographic hash; src/crypto builds simulated
// unforgeable signatures on top of it by construction (the simulator never
// lets one principal produce another principal's signature), so collision
// resistance beyond accident-avoidance is not required.

#ifndef BTR_SRC_COMMON_HASH_H_
#define BTR_SRC_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace btr {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

namespace hash_internal {
// Strengthening finalizer (from SplitMix64).
inline constexpr uint64_t Finalize(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace hash_internal

// FNV-1a over raw bytes, with a strengthening finalizer. Inline so the
// fixed-size hot uses (Hasher::Add of 4/8-byte fields, signature tags) are
// fully unrolled by the compiler — these run millions of times per
// simulated second. The byte-serial recurrence itself is unchanged, so
// every digest in the system keeps its value.
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return hash_internal::Finalize(h);
}

inline uint64_t HashString(std::string_view s, uint64_t seed = kFnvOffset) {
  return HashBytes(s.data(), s.size(), seed);
}

// Combines two 64-bit hashes (boost::hash_combine style, 64-bit constants).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return hash_internal::Finalize(a);
}

// Incremental hasher for composing digests of structured values.
class Hasher {
 public:
  Hasher() = default;
  explicit Hasher(uint64_t seed) : state_(seed) {}

  template <typename T>
  Hasher& Add(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>, "Add requires a trivially copyable type");
    state_ = HashBytes(&value, sizeof(value), state_);
    return *this;
  }

  Hasher& AddString(std::string_view s) {
    state_ = HashBytes(s.data(), s.size(), state_);
    // Length-prefix to keep ("ab","c") distinct from ("a","bc").
    return Add(s.size());
  }

  template <typename T>
  Hasher& AddVector(const std::vector<T>& v) {
    for (const T& x : v) {
      Add(x);
    }
    return Add(v.size());
  }

  uint64_t Digest() const { return hash_internal::Finalize(state_); }

 private:
  uint64_t state_ = kFnvOffset;
};

}  // namespace btr

#endif  // BTR_SRC_COMMON_HASH_H_
