// The process-wide worker pool shared by the planner and the simulator.
//
// Planning a strategy is embarrassingly parallel within one fault-set level
// (all level-k modes depend only on level k-1), so the StrategyBuilder
// submits each wave as a blocking ParallelFor batch. The sharded simulator
// additionally needs long-lived shard loops that run concurrently with the
// coordinator thread, so the pool also exposes a non-blocking Dispatch that
// returns a Ticket to wait on. Batches are independent: each tracks its own
// completion count and first error, so a planner wave and a simulation run
// never wait on each other's jobs.
//
// `ThreadPool::Shared()` is the one instance both subsystems fold onto; its
// workers are pinned round-robin to cores (best effort, Linux only) so shard
// loops do not migrate between windows.
//
// Nested use is safe by construction: the experiment service runs whole
// sweep jobs as pool jobs, and each job plans (builder waves) and simulates
// (shard loops) — on the same shared pool. A Dispatch issued *from* a pool
// worker therefore runs its batch inline on that worker instead of
// enqueueing, because every worker blocking in Ticket::Wait on jobs that no
// free worker will ever pick up is a deadlock, not a queue. Callers that
// must have genuinely concurrent helpers (the sharded simulator's window
// handshake) reserve them with ReserveWorkers, which counts only idle
// workers — a "reserved ticket" that cannot be starved by long-running
// jobs already occupying the pool.

#ifndef BTR_SRC_COMMON_THREAD_POOL_H_
#define BTR_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace btr {

class ThreadPool {
 public:
  // `threads` = 0 picks the hardware concurrency (at least 1). A pool of
  // size 1 spawns no workers — ParallelFor and Dispatch run inline on the
  // calling thread, so single-threaded builds stay exactly as deterministic
  // and debuggable as the pre-pool planner.
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // The process-wide pool. Sized to the hardware concurrency; grows on
  // demand via EnsureWorkers. Never destroyed (workers park in their
  // condition variable at exit).
  static ThreadPool& Shared();

  size_t thread_count() const { return thread_count_; }
  size_t worker_count() const;

  // Grows the pool to at least `workers` worker threads. The sharded
  // simulator calls this before dispatching one long-lived loop per shard;
  // without the guarantee a queued-but-never-started shard loop would
  // deadlock the window barrier.
  void EnsureWorkers(size_t workers);

  // Grows the pool until at least `workers` workers are *idle* right now.
  // EnsureWorkers only bounds the total, which is not enough once
  // long-running jobs (sweep jobs, shard loops) occupy workers: a batch
  // that needs genuinely concurrent helpers would queue behind them
  // forever. Callers dispatch immediately after reserving; jobs enqueued
  // concurrently from other threads can still race for the new workers,
  // but a worker never blocks on another batch, so the reserve cannot be
  // consumed by the reserving thread's own pending work.
  void ReserveWorkers(size_t workers);

  // True when called on one of this process's pool worker threads (any
  // pool). Nested Dispatch/ParallelFor calls detect themselves with this
  // and run inline; subsystems with long-lived loops (the sharded
  // simulator) use it to fall back to their sequential path.
  static bool OnWorkerThread();

  // Workers currently executing a job (approximate the moment it returns).
  size_t busy_workers() const;

  // Handle for a Dispatch batch. Wait() blocks until every job in the batch
  // returned and rethrows the first captured exception.
  class Ticket {
   public:
    Ticket() = default;
    void Wait();

   private:
    friend class ThreadPool;
    struct Batch;
    std::shared_ptr<Batch> batch_;
  };

  // Enqueues fn(0) ... fn(count - 1) and returns immediately. Jobs from
  // different Dispatch calls may interleave; each batch completes
  // independently. With no workers (pool of size 1) — or when called from
  // a pool worker thread (nested use; see the header comment) — the jobs
  // run inline before Dispatch returns.
  Ticket Dispatch(size_t count, std::function<void(size_t)> fn);

  // Runs fn(0) ... fn(count - 1) across the pool and blocks until every
  // call returned. `fn` must be safe to invoke concurrently. If any call
  // throws, the first captured exception is rethrown on the calling thread
  // after the batch drains (matching what a serial loop would do).
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  struct Job;

  static void ExecuteAndRetire(Job& job);
  void SpawnWorkerLocked();
  void WorkerLoop(size_t worker_index);

  size_t thread_count_ = 1;
  bool pin_workers_ = false;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::queue<Job> queue_;
  size_t busy_ = 0;  // workers currently executing a job (guarded by mu_)
  bool shutdown_ = false;
};

}  // namespace btr

#endif  // BTR_SRC_COMMON_THREAD_POOL_H_
