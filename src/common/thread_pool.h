// A small fixed-size worker pool for the offline planner.
//
// Planning a strategy is embarrassingly parallel within one fault-set level
// (all level-k modes depend only on level k-1), so the StrategyBuilder
// submits each wave as a batch of independent jobs. The pool is intentionally
// minimal: fixed worker count, one blocking ParallelFor batch at a time, no
// futures.

#ifndef BTR_SRC_COMMON_THREAD_POOL_H_
#define BTR_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace btr {

class ThreadPool {
 public:
  // `threads` = 0 picks the hardware concurrency (at least 1). A pool of
  // size 1 runs jobs inline on the calling thread — no worker is spawned, so
  // single-threaded builds stay exactly as deterministic and debuggable as
  // the pre-pool planner.
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return thread_count_; }

  // Runs fn(0) ... fn(count - 1) across the pool and blocks until every
  // call returned. `fn` must be safe to invoke concurrently. If any call
  // throws, the first captured exception is rethrown on the calling thread
  // after the batch drains (matching what a serial loop would do).
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  size_t thread_count_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace btr

#endif  // BTR_SRC_COMMON_THREAD_POOL_H_
