#include "src/common/rng.h"

#include <cmath>

namespace btr {
namespace {

// SplitMix64 is used to expand the user seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(&s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian(double mean, double stddev) {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) {
    sum += NextDouble();
  }
  return mean + stddev * (sum - 6.0);
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace btr
