// Open-addressing flat hash map/set keyed by 64-bit packed ids.
//
// The runtime's per-period state was held in std::map/std::set keyed by
// pairs and tuples: every insert allocated a tree node and every lookup
// chased red-black pointers, on a path that runs for every received record,
// heartbeat, and evidence item. FlatMap64 stores keys and values in two
// parallel arrays with linear probing (power-of-two capacity, SplitMix64
// key mixing, backward-shift deletion — no tombstones), so steady-state
// operations touch one or two cache lines and never allocate.
//
// Iteration order is the probe order, which is NOT insertion or key order
// and may change on rehash: nothing behavioral may depend on it. The
// runtime only iterates via EraseIf for retention GC, whose predicate is
// order-independent and idempotent (EraseIf may re-examine entries that
// backward-shift into already-visited slots).

#ifndef BTR_SRC_COMMON_FLAT_MAP_H_
#define BTR_SRC_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace btr {

// SplitMix64 finalizer: full-avalanche mixing so packed keys (which differ
// mostly in low period bits) spread over the table.
constexpr uint64_t MixKey64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename V>
class FlatMap64 {
 public:
  FlatMap64() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    std::fill(full_.begin(), full_.end(), uint8_t{0});
    values_.assign(values_.size(), V());
    size_ = 0;
  }

  void reserve(size_t n) {
    size_t cap = 16;
    while (cap * 3 < n * 4) {  // keep load factor under 3/4
      cap *= 2;
    }
    if (cap > capacity()) {
      Rehash(cap);
    }
  }

  V* Find(uint64_t key) {
    const size_t i = FindIndex(key);
    return i != kNpos ? &values_[i] : nullptr;
  }
  const V* Find(uint64_t key) const {
    const size_t i = FindIndex(key);
    return i != kNpos ? &values_[i] : nullptr;
  }
  bool Contains(uint64_t key) const { return FindIndex(key) != kNpos; }

  // Inserts default-constructed value if absent; returns the value slot.
  V& operator[](uint64_t key) {
    MaybeGrow();
    size_t i = ProbeFor(key);
    if (!full_[i]) {
      full_[i] = 1;
      keys_[i] = key;
      values_[i] = V();
      ++size_;
    }
    return values_[i];
  }

  // Returns true if inserted, false if the key already existed (value left
  // untouched, matching std emplace semantics).
  bool Emplace(uint64_t key, V value) {
    MaybeGrow();
    size_t i = ProbeFor(key);
    if (full_[i]) {
      return false;
    }
    full_[i] = 1;
    keys_[i] = key;
    values_[i] = std::move(value);
    ++size_;
    return true;
  }

  void InsertOrAssign(uint64_t key, V value) {
    MaybeGrow();
    size_t i = ProbeFor(key);
    if (!full_[i]) {
      full_[i] = 1;
      keys_[i] = key;
      ++size_;
    }
    values_[i] = std::move(value);
  }

  bool Erase(uint64_t key) {
    const size_t i = FindIndex(key);
    if (i == kNpos) {
      return false;
    }
    EraseAt(i);
    return true;
  }

  // Removes every entry for which pred(key, value) is true. The predicate
  // must be pure and idempotent: backward-shift deletion can move entries
  // into slots the scan already passed, so an entry may be evaluated twice.
  template <typename Pred>
  void EraseIf(Pred pred) {
    for (size_t i = 0; i < capacity(); /* advance below */) {
      if (full_[i] && pred(keys_[i], values_[i])) {
        EraseAt(i);  // the backward shift may refill slot i: re-examine it
      } else {
        ++i;
      }
    }
  }

  // Calls fn(key, value) for every entry, in probe order (NOT deterministic
  // across rehash policies — for tests and diagnostics only).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t i = 0; i < capacity(); ++i) {
      if (full_[i]) {
        fn(keys_[i], values_[i]);
      }
    }
  }

 private:
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  size_t capacity() const { return keys_.size(); }
  size_t Mask() const { return capacity() - 1; }

  size_t FindIndex(uint64_t key) const {
    if (size_ == 0) {
      return kNpos;
    }
    size_t i = MixKey64(key) & Mask();
    while (full_[i]) {
      if (keys_[i] == key) {
        return i;
      }
      i = (i + 1) & Mask();
    }
    return kNpos;
  }

  // First slot holding `key`, or the empty slot where it belongs.
  size_t ProbeFor(uint64_t key) const {
    size_t i = MixKey64(key) & Mask();
    while (full_[i] && keys_[i] != key) {
      i = (i + 1) & Mask();
    }
    return i;
  }

  void MaybeGrow() {
    if (capacity() == 0) {
      Rehash(16);
    } else if ((size_ + 1) * 4 > capacity() * 3) {
      Rehash(capacity() * 2);
    }
  }

  void Rehash(size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0 && new_cap > size_);
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    std::vector<uint8_t> old_full = std::move(full_);
    keys_.assign(new_cap, 0);
    values_.assign(new_cap, V());
    full_.assign(new_cap, 0);
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_full[i]) {
        continue;
      }
      size_t j = MixKey64(old_keys[i]) & Mask();
      while (full_[j]) {
        j = (j + 1) & Mask();
      }
      full_[j] = 1;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
  }

  void EraseAt(size_t i) {
    assert(full_[i]);
    full_[i] = 0;
    values_[i] = V();  // release held resources (e.g. shared_ptr payloads)
    --size_;
    // Backward-shift: walk the probe chain after i and move back any entry
    // whose ideal slot does not lie (cyclically) after the hole.
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & Mask();
      if (!full_[j]) {
        return;
      }
      const size_t ideal = MixKey64(keys_[j]) & Mask();
      // `j` can fill `hole` iff ideal is not in the cyclic range (hole, j].
      const bool movable = (j > hole) ? (ideal <= hole || ideal > j)
                                      : (ideal <= hole && ideal > j);
      if (movable) {
        keys_[hole] = keys_[j];
        values_[hole] = std::move(values_[j]);
        full_[hole] = 1;
        full_[j] = 0;
        values_[j] = V();
        hole = j;
      }
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  std::vector<uint8_t> full_;
  size_t size_ = 0;
};

// Flat set of packed 64-bit keys (same storage discipline as FlatMap64).
class FlatSet64 {
 public:
  bool Insert(uint64_t key) { return map_.Emplace(key, Unit{}); }
  bool Contains(uint64_t key) const { return map_.Contains(key); }
  bool Erase(uint64_t key) { return map_.Erase(key); }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }

  template <typename Pred>
  void EraseIf(Pred pred) {
    map_.EraseIf([&pred](uint64_t key, const Unit&) { return pred(key); });
  }

 private:
  struct Unit {};
  FlatMap64<Unit> map_;
};

}  // namespace btr

#endif  // BTR_SRC_COMMON_FLAT_MAP_H_
