// Small-buffer, move-only callable for the simulation hot path.
//
// std::function heap-allocates almost every capture the simulator produces
// (per scheduled event, per network hop), which dominated the data-plane
// profile. SmallFn stores callables up to InlineBytes inline — sized so the
// event queue's and network's lambdas fit — and its storage lives inside
// pooled event slots, so the steady-state path performs no allocation at
// all. Oversized captures fall back to the heap (correct, just not free).

#ifndef BTR_SRC_COMMON_SMALL_FN_H_
#define BTR_SRC_COMMON_SMALL_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace btr {

template <size_t InlineBytes = 48>
class SmallFn {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (storage_) Fn(std::forward<F>(fn));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(fn));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(std::move(other)); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  // Destroys the held callable (releasing captured resources) without
  // requiring a full reassignment; used when recycling event slots.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move)(void* from, void* to);  // move-construct `to` from `from`
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); }
    static void Move(void* from, void* to) {
      Fn* src = std::launder(reinterpret_cast<Fn*>(from));
      ::new (to) Fn(std::move(*src));
      src->~Fn();
    }
    static void Destroy(void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); }
    static constexpr Ops ops{&Invoke, &Move, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Get(void* s) { return *std::launder(reinterpret_cast<Fn**>(s)); }
    static void Invoke(void* s) { (*Get(s))(); }
    static void Move(void* from, void* to) {
      *reinterpret_cast<Fn**>(to) = Get(from);
    }
    static void Destroy(void* s) { delete Get(s); }
    static constexpr Ops ops{&Invoke, &Move, &Destroy};
  };

  void MoveFrom(SmallFn&& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace btr

#endif  // BTR_SRC_COMMON_SMALL_FN_H_
