#include "src/common/log.h"

#include <cstdio>
#include <mutex>

#include "src/common/exec_context.h"

namespace btr {
namespace {

LogLevel g_level = LogLevel::kOff;
// Thread-local: the sweep service runs one simulator per concurrent job,
// each registering its own clock from its own thread. Shard workers never
// read this (they carry their clock in ExecContext).
thread_local const SimTime* g_now = nullptr;
std::mutex g_emit_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }
void SetLogTimeSource(const SimTime* now) { g_now = now; }

bool LogEnabled(LogLevel level) { return static_cast<int>(level) >= static_cast<int>(g_level); }

void LogLine(LogLevel level, const std::string& component, const std::string& message) {
  if (!LogEnabled(level)) {
    return;
  }
  // Shard workers carry their own clock in TLS; the global time source is
  // only safe to read on the exclusive path.
  const ExecContext& exec = ThisThreadExec();
  const SimTime* now = exec.worker ? exec.now : g_now;
  std::lock_guard<std::mutex> lock(g_emit_mu);
  if (now != nullptr) {
    std::fprintf(stderr, "[%s %12.6fs %-10s] %s\n", LevelName(level), ToSecondsF(*now),
                 component.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "[%s %-10s] %s\n", LevelName(level), component.c_str(), message.c_str());
  }
}

}  // namespace btr
