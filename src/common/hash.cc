#include "src/common/hash.h"

namespace btr {
namespace {

uint64_t Finalize(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return Finalize(h);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return Finalize(a);
}

uint64_t Hasher::Digest() const { return Finalize(state_); }

}  // namespace btr
