// Deterministic pseudo-random number generation for simulations.
//
// The whole simulator must be reproducible from a single seed, so all
// randomness flows through Rng instances created from explicit seeds.
// Implementation: xoshiro256** (public domain, Blackman & Vigna).

#ifndef BTR_SRC_COMMON_RNG_H_
#define BTR_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace btr {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p);

  // Approximately normal via sum of uniforms (Irwin-Hall, 12 terms).
  double NextGaussian(double mean, double stddev);

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) {
      return;
    }
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Derive an independent child generator; used to give each simulated node
  // its own stream so that adding events to one node does not perturb others.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace btr

#endif  // BTR_SRC_COMMON_RNG_H_
