// Freelist block pool + allocate_shared support for simulation payloads.
//
// Every message the simulated network carries (output records, heartbeats,
// evidence wrappers, state transfers) was a fresh make_shared: one malloc
// per payload, times every neighbor, every period. BlockPool recycles
// fixed-size blocks through per-size-class freelists, and MakePooled builds
// a shared_ptr whose object AND control block live in one pooled block
// (via std::allocate_shared), so steady-state payload traffic allocates
// nothing.
//
// Lifetime: PoolAllocator holds a shared_ptr to the pool, and every pooled
// object's control block embeds a copy, so the pool outlives the last
// payload no matter where the simulation stashes it. Single-threaded by
// design, like the simulator that owns it.

#ifndef BTR_SRC_COMMON_BLOCK_POOL_H_
#define BTR_SRC_COMMON_BLOCK_POOL_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace btr {

class BlockPool {
 public:
  BlockPool() = default;
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  ~BlockPool() {
    for (void* p : all_blocks_) {
      ::operator delete(p);
    }
  }

  void* Allocate(size_t bytes) {
    const size_t cls = SizeClass(bytes);
    if (cls >= free_.size() || free_[cls].empty()) {
      void* block = ::operator new(ClassBytes(cls));
      all_blocks_.push_back(block);
      return block;
    }
    void* block = free_[cls].back();
    free_[cls].pop_back();
    return block;
  }

  void Deallocate(void* p, size_t bytes) {
    const size_t cls = SizeClass(bytes);
    if (cls >= free_.size()) {
      free_.resize(cls + 1);
    }
    free_[cls].push_back(p);
  }

  size_t allocated_blocks() const { return all_blocks_.size(); }

 private:
  // Size classes are powers of two from 32 bytes up; class i holds blocks
  // of 32 << i bytes.
  static size_t SizeClass(size_t bytes) {
    size_t cls = 0;
    size_t cap = 32;
    while (cap < bytes) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }
  static size_t ClassBytes(size_t cls) { return size_t{32} << cls; }

  std::vector<std::vector<void*>> free_;
  std::vector<void*> all_blocks_;
};

template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(std::shared_ptr<BlockPool> pool) : pool_(std::move(pool)) {}

  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(pool_->Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { pool_->Deallocate(p, n * sizeof(T)); }

  const std::shared_ptr<BlockPool>& pool() const { return pool_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return pool_ == other.pool();
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>& other) const {
    return !(*this == other);
  }

 private:
  std::shared_ptr<BlockPool> pool_;
};

// shared_ptr<T> whose storage (object + control block) comes from `pool`.
template <typename T, typename... Args>
std::shared_ptr<T> MakePooled(const std::shared_ptr<BlockPool>& pool, Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>(pool), std::forward<Args>(args)...);
}

}  // namespace btr

#endif  // BTR_SRC_COMMON_BLOCK_POOL_H_
