// Freelist block pool + allocate_shared support for simulation payloads.
//
// Every message the simulated network carries (output records, heartbeats,
// evidence wrappers, state transfers) was a fresh make_shared: one malloc
// per payload, times every neighbor, every period. BlockPool recycles
// fixed-size blocks through per-size-class freelists, and MakePooled builds
// a shared_ptr whose object AND control block live in one pooled block
// (via std::allocate_shared), so steady-state payload traffic allocates
// nothing.
//
// Lifetime: PoolAllocator holds a shared_ptr to the pool, and every pooled
// object's control block embeds a copy, so the pool outlives the last
// payload no matter where the simulation stashes it.
//
// Threading: by default a pool is single-threaded, like the exclusive
// simulator path that owns it. The sharded data plane gives each shard its
// own arena and calls BindOwnerShard; payload blocks are then allocated on
// the owning shard but may be released on the *receiver's* shard when a
// delivered message drops its last reference. Foreign releases push the
// block onto a lock-free Treiber stack (push-only producers, swap-all
// consumer, so no ABA window) that the owner drains on its next allocation.

#ifndef BTR_SRC_COMMON_BLOCK_POOL_H_
#define BTR_SRC_COMMON_BLOCK_POOL_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/exec_context.h"

namespace btr {

class BlockPool {
 public:
  BlockPool() = default;
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  ~BlockPool() {
    for (void* p : all_blocks_) {
      ::operator delete(p);
    }
  }

  // Marks this pool as owned by `shard`: releases from any other shard's
  // worker thread go through the lock-free foreign-return stack instead of
  // the plain freelist. Exclusive-path releases (driver events, post-run
  // teardown) always use the plain freelist — the workers are parked then.
  void BindOwnerShard(uint32_t shard) {
    owner_shard_ = shard;
    concurrent_returns_ = true;
  }

  void* Allocate(size_t bytes) {
    const size_t cls = SizeClass(bytes);
    if (cls >= free_.size() || free_[cls].empty()) {
      if (concurrent_returns_ && DrainForeign() && cls < free_.size() && !free_[cls].empty()) {
        void* block = free_[cls].back();
        free_[cls].pop_back();
        return block;
      }
      void* block = ::operator new(ClassBytes(cls));
      all_blocks_.push_back(block);
      return block;
    }
    void* block = free_[cls].back();
    free_[cls].pop_back();
    return block;
  }

  void Deallocate(void* p, size_t bytes) {
    const size_t cls = SizeClass(bytes);
    if (concurrent_returns_) {
      const ExecContext& exec = ThisThreadExec();
      if (exec.worker && exec.shard != owner_shard_) {
        PushForeign(p, cls);
        return;
      }
    }
    if (cls >= free_.size()) {
      free_.resize(cls + 1);
    }
    free_[cls].push_back(p);
  }

  size_t allocated_blocks() const { return all_blocks_.size(); }

 private:
  // Every block is at least 32 bytes, so a freed block has room for the
  // intrusive foreign-stack link: next pointer + size class.
  struct ForeignLink {
    ForeignLink* next;
    size_t cls;
  };
  static_assert(sizeof(ForeignLink) <= 32, "freed blocks must fit the link");

  void PushForeign(void* p, size_t cls) {
    auto* link = static_cast<ForeignLink*>(p);
    link->cls = cls;
    ForeignLink* head = foreign_head_.load(std::memory_order_relaxed);
    do {
      link->next = head;
    } while (!foreign_head_.compare_exchange_weak(head, link, std::memory_order_release,
                                                  std::memory_order_relaxed));
  }

  // Owner-side drain: detach the whole stack at once. Returns true if any
  // block came back.
  bool DrainForeign() {
    ForeignLink* head = foreign_head_.exchange(nullptr, std::memory_order_acquire);
    if (head == nullptr) {
      return false;
    }
    while (head != nullptr) {
      ForeignLink* next = head->next;
      const size_t cls = head->cls;
      if (cls >= free_.size()) {
        free_.resize(cls + 1);
      }
      free_[cls].push_back(head);
      head = next;
    }
    return true;
  }

  // Size classes are powers of two from 32 bytes up; class i holds blocks
  // of 32 << i bytes.
  static size_t SizeClass(size_t bytes) {
    size_t cls = 0;
    size_t cap = 32;
    while (cap < bytes) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }
  static size_t ClassBytes(size_t cls) { return size_t{32} << cls; }

  std::vector<std::vector<void*>> free_;
  std::vector<void*> all_blocks_;
  bool concurrent_returns_ = false;
  uint32_t owner_shard_ = 0;
  alignas(64) std::atomic<ForeignLink*> foreign_head_{nullptr};
};

template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(std::shared_ptr<BlockPool> pool) : pool_(std::move(pool)) {}

  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(pool_->Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { pool_->Deallocate(p, n * sizeof(T)); }

  const std::shared_ptr<BlockPool>& pool() const { return pool_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return pool_ == other.pool();
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>& other) const {
    return !(*this == other);
  }

 private:
  std::shared_ptr<BlockPool> pool_;
};

// shared_ptr<T> whose storage (object + control block) comes from `pool`.
template <typename T, typename... Args>
std::shared_ptr<T> MakePooled(const std::shared_ptr<BlockPool>& pool, Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>(pool), std::forward<Args>(args)...);
}

}  // namespace btr

#endif  // BTR_SRC_COMMON_BLOCK_POOL_H_
