#include "src/common/status.h"

namespace btr {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace btr
