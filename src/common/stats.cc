#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace btr {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Samples::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  return Sum() / static_cast<double>(values_.size());
}

double Samples::Sum() const { return std::accumulate(values_.begin(), values_.end(), 0.0); }

double Samples::Min() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::Max() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::Percentile(double q) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (q <= 0.0) {
    return values_.front();
  }
  if (q >= 1.0) {
    return values_.back();
  }
  const double pos = q * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) {
    return values_.back();
  }
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, size_t buckets) : lo_(lo), hi_(hi), counts_(buckets) {}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  size_t i = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
  if (i >= counts_.size()) {
    i = counts_.size() - 1;
  }
  ++counts_[i];
}

double Histogram::BucketLow(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::ToAscii(size_t width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar = static_cast<size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(width));
    out << "  [" << BucketLow(i) << ", " << BucketLow(i + 1) << ") ";
    out << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ > 0) {
    out << "  underflow: " << underflow_ << "\n";
  }
  if (overflow_ > 0) {
    out << "  overflow: " << overflow_ << "\n";
  }
  return out.str();
}

}  // namespace btr
