// Core identifier and simulated-time types shared by every BTR library.
//
// All simulation state is keyed by small integer ids wrapped in distinct
// strong types so that a NodeId cannot be passed where a TaskId is expected.

#ifndef BTR_SRC_COMMON_TYPES_H_
#define BTR_SRC_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace btr {

// Simulated time in nanoseconds since the start of the run. Signed so that
// subtraction of nearby instants is safe.
using SimTime = int64_t;

// Simulated duration in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();

constexpr SimDuration Nanoseconds(int64_t n) { return n; }
constexpr SimDuration Microseconds(int64_t us) { return us * 1000; }
constexpr SimDuration Milliseconds(int64_t ms) { return ms * 1000 * 1000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1000 * 1000 * 1000; }

constexpr double ToSecondsF(SimDuration d) { return static_cast<double>(d) / 1e9; }
constexpr double ToMillisF(SimDuration d) { return static_cast<double>(d) / 1e6; }

// Strong id wrapper. Tag is an empty struct used only to make distinct types.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(uint32_t value) : value_(value) {}

  constexpr uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

  static constexpr Id Invalid() { return Id(); }

 private:
  static constexpr uint32_t kInvalid = std::numeric_limits<uint32_t>::max();
  uint32_t value_ = kInvalid;
};

struct NodeIdTag {};
struct LinkIdTag {};
struct TaskIdTag {};
struct MessageIdTag {};
struct FlowIdTag {};

// A physical processing node (ECU, controller board, ...).
using NodeId = Id<NodeIdTag>;
// A shared communication link (bus segment, point-to-point wire, ...).
using LinkId = Id<LinkIdTag>;
// A task in the dataflow workload (also used for planner-added tasks).
using TaskId = Id<TaskIdTag>;
// A unique message instance on the network.
using MessageId = Id<MessageIdTag>;
// An end-to-end dataflow (source ... sink chain) with a deadline.
using FlowId = Id<FlowIdTag>;

template <typename Tag>
std::string ToString(Id<Tag> id, const char* prefix) {
  if (!id.valid()) {
    return std::string(prefix) + "<invalid>";
  }
  return std::string(prefix) + std::to_string(id.value());
}

inline std::string ToString(NodeId id) { return ToString(id, "n"); }
inline std::string ToString(LinkId id) { return ToString(id, "l"); }
inline std::string ToString(TaskId id) { return ToString(id, "t"); }
inline std::string ToString(FlowId id) { return ToString(id, "f"); }

}  // namespace btr

// Hash support so ids can key unordered containers.
namespace std {
template <typename Tag>
struct hash<btr::Id<Tag>> {
  size_t operator()(btr::Id<Tag> id) const noexcept {
    return std::hash<uint32_t>()(id.value());
  }
};
}  // namespace std

#endif  // BTR_SRC_COMMON_TYPES_H_
