// Small vector with inline storage for the data plane's tiny arrays.
//
// Every output record carries its claimed inputs (typically 1-3 entries,
// bounded by task fan-in); with std::vector that is one heap allocation
// per record per period per replica. InlineVec keeps up to N elements in
// the object itself and only touches the heap beyond that, so the common
// case allocates nothing. Deliberately minimal: just the operations the
// record types use.

#ifndef BTR_SRC_COMMON_INLINE_VEC_H_
#define BTR_SRC_COMMON_INLINE_VEC_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <type_traits>
#include <utility>

namespace btr {

template <typename T, size_t N>
class InlineVec {
  static_assert(std::is_nothrow_move_constructible_v<T>);

 public:
  InlineVec() = default;

  InlineVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }
  InlineVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  InlineVec(const InlineVec& other) { CopyFrom(other); }
  InlineVec(InlineVec&& other) noexcept { MoveFrom(std::move(other)); }

  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) {
      clear();
      CopyFrom(other);
    }
    return *this;
  }
  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      clear();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~InlineVec() { clear(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      Grow(capacity_ * 2);
    }
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void reserve(size_t n) {
    if (n > capacity_) {
      Grow(n);
    }
  }

  void clear() {
    T* p = data();
    for (size_t i = 0; i < size_; ++i) {
      p[i].~T();
    }
    size_ = 0;
    if (heap_ != nullptr) {
      ::operator delete(heap_);
      heap_ = nullptr;
      capacity_ = N;
    }
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) {
      emplace_back(*first);
    }
  }

 private:
  T* data() { return heap_ != nullptr ? heap_ : InlineData(); }
  const T* data() const { return heap_ != nullptr ? heap_ : InlineData(); }
  T* InlineData() { return std::launder(reinterpret_cast<T*>(inline_)); }
  const T* InlineData() const { return std::launder(reinterpret_cast<const T*>(inline_)); }

  void Grow(size_t new_cap) {
    new_cap = std::max(new_cap, N * 2);
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    T* old = data();
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(old[i]));
      old[i].~T();
    }
    if (heap_ != nullptr) {
      ::operator delete(heap_);
    }
    heap_ = fresh;
    capacity_ = new_cap;
  }

  void CopyFrom(const InlineVec& other) {
    reserve(other.size_);
    T* p = data();
    for (size_t i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(p + i)) T(other.data()[i]);
    }
    size_ = other.size_;
  }

  void MoveFrom(InlineVec&& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    T* src = other.InlineData();
    T* dst = InlineData();
    for (size_t i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(dst + i)) T(std::move(src[i]));
      src[i].~T();
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace btr

#endif  // BTR_SRC_COMMON_INLINE_VEC_H_
