// Online statistics and histograms for experiment reporting.

#ifndef BTR_SRC_COMMON_STATS_H_
#define BTR_SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace btr {

// Welford-style running mean/variance plus min/max.
class OnlineStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact-percentile sample collector. Stores all samples; fine for the sample
// counts our experiments produce (<= millions).
class Samples {
 public:
  void Add(double x) { values_.push_back(x); }
  void Reserve(size_t n) { values_.reserve(n); }

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Sum() const;
  // q in [0, 1]; linear interpolation between order statistics.
  double Percentile(double q) const;

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

// Fixed-width linear histogram for distribution summaries in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t BucketCount() const { return counts_.size(); }
  uint64_t BucketValue(size_t i) const { return counts_[i]; }
  double BucketLow(size_t i) const;
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total() const { return total_; }

  // Render as fixed-width ASCII bars, one bucket per line.
  std::string ToAscii(size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace btr

#endif  // BTR_SRC_COMMON_STATS_H_
