#include "src/common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace btr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  sep += "\n";

  std::string out = render_row(headers_);
  out += sep;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string CellInt(int64_t v) { return std::to_string(v); }

std::string CellDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string CellDuration(double nanos) {
  char buf[64];
  const double a = std::fabs(nanos);
  if (a < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", nanos);
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", nanos / 1e3);
  } else if (a < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", nanos / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", nanos / 1e9);
  }
  return buf;
}

std::string CellBytes(double bytes) {
  char buf[64];
  const double a = std::fabs(bytes);
  if (a < 1024) {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  } else if (a < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1024.0 * 1024.0));
  }
  return buf;
}

std::string CellPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace btr
