#!/usr/bin/env bash
# Perf harness: builds Release, runs the bench binaries on a small smoke
# preset, and emits machine-readable BENCH_runtime.json at the repo root so
# every PR has a recorded perf trajectory.
#
# Usage:
#   ci/run_benches.sh                  # smoke preset (CI: fast, keeps binaries honest)
#   ci/run_benches.sh --full           # E7 preset, more reps (perf work: real numbers)
#   ci/run_benches.sh --sweep-service  # + sweep_service row (btrsim --bench-service)
#   ci/run_benches.sh --dissemination  # + gossip-vs-unicast rollout rows
#                                      #   (latency + bytes-on-bus vs fleet size,
#                                      #   and rollout latency vs pace_fraction)
#   ci/run_benches.sh --scenarios      # + scenario-family rows (coverage vs
#                                      #   churn rate on the mobile convoy)
#   ci/run_benches.sh --format         # + strategy_format row (v4 image vs
#                                      #   v2 text: blob/patch bytes, parse-
#                                      #   vs-map install time, report-fp
#                                      #   equality across strategy sources)
#
# The JSON is a single object:
#   {
#     "preset": "...",
#     "rows": [ {bench, preset, variant, periods, events, wall_ms,
#                events_per_sec, fingerprint}, ... ]
#   }
# Fingerprints are seed-stable report digests: a changed fingerprint for an
# unchanged seed means a behavior change, not just a perf change.
set -euo pipefail
cd "$(dirname "$0")/.."

PRESET=smoke
REPS=2
SWEEP_SERVICE=0
DISSEMINATION=0
SCENARIOS=0
FORMAT=0
for arg in "$@"; do
  case "${arg}" in
    --full)
      PRESET=e7
      REPS=5
      ;;
    --sweep-service)
      SWEEP_SERVICE=1
      ;;
    --dissemination)
      DISSEMINATION=1
      ;;
    --scenarios)
      SCENARIOS=1
      ;;
    --format)
      FORMAT=1
      ;;
    *)
      echo "unknown option: ${arg}" >&2
      exit 2
      ;;
  esac
done

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
BENCH_TARGETS=(bench_sim_throughput bench_planner_scalability bench_plan_delta example_btrsim)
if [[ "${DISSEMINATION}" == "1" ]]; then
  BENCH_TARGETS+=(bench_dissemination)
fi
if [[ "${SCENARIOS}" == "1" ]]; then
  BENCH_TARGETS+=(bench_scenarios)
fi
if [[ "${FORMAT}" == "1" ]]; then
  BENCH_TARGETS+=(bench_format)
fi
cmake --build build-bench -j "$(nproc)" --target "${BENCH_TARGETS[@]}"

OUT=BENCH_runtime.json
# bench_sim_throughput emits the sequential rows plus the sim_parallel
# scaling curve (shards 1/2/4/8 of the same run, with host_cores and a
# cross-shard fingerprint-equality check baked into the bench itself).
ROWS=$(./build-bench/bench_sim_throughput "--preset=${PRESET}" "--reps=${REPS}" \
  | sed -n 's/^BENCH_JSON //p' | paste -sd, -)
# Incremental-replanning rows (E7 addendum): full-vs-incremental rebuild
# time on single-edit streams, with a byte-identical serialization check.
PLANNER_ROWS=$(./build-bench/bench_planner_scalability --incremental-only \
  | sed -n 's/^BENCH_JSON //p' | paste -sd, -)
if [[ -n "${PLANNER_ROWS}" ]]; then
  ROWS="${ROWS},
    ${PLANNER_ROWS}"
fi
# Install-traffic rows (E7 addendum): per-node install bytes and simulated
# install latency after a single edit, sliced patches vs the naive
# full-blob-to-every-node baseline (see README "Strategy distribution").
INSTALL_ROWS=$(./build-bench/bench_plan_delta --install-only \
  | sed -n 's/^BENCH_JSON //p' | paste -sd, -)
if [[ -n "${INSTALL_ROWS}" ]]; then
  ROWS="${ROWS},
    ${INSTALL_ROWS}"
fi
# Spec sweep row (E7 addendum): the declarative sweep runner expands
# examples/specs/e7_sweep.btrx into seeded runs; its aggregate fingerprint
# pins the whole experiments-as-data path (parse -> scenario -> lifecycle
# -> report), so a silent behavior change in any layer shows up here.
# btrsim exits nonzero when a run violates Definition 3.1 — that is an
# experiment outcome, not a harness failure, so don't let pipefail kill
# the script before the JSON is written; the row still records it.
SWEEP_ROWS=$( (./build-bench/example_btrsim --spec examples/specs/e7_sweep.btrx || \
  echo "spec sweep exited $? (Definition 3.1 violation or failed run)" >&2) \
  | sed -n 's/^BENCH_JSON //p' | paste -sd, -)
if [[ -n "${SWEEP_ROWS}" ]]; then
  ROWS="${ROWS},
    ${SWEEP_ROWS}"
fi
# Sweep-service row (--sweep-service): the experiment service runs the
# expanded e7_sweep fleet through {cache on, cache off} x {--jobs 1, 4}.
# The row records the cache economics (cold vs warm wall, hit ratio) and
# asserts the combined experiment fingerprint is identical across all four
# corners — the cache and the job lanes are speed knobs, never semantics
# knobs. btrsim exits nonzero on fingerprint divergence; like the sweep
# row above, record it without killing the harness.
if [[ "${SWEEP_SERVICE}" == "1" ]]; then
  SERVICE_ROWS=$( (./build-bench/example_btrsim --spec examples/specs/e7_sweep.btrx \
    --bench-service || \
    echo "sweep service exited $? (fingerprint divergence or failed pass)" >&2) \
    | sed -n 's/^BENCH_JSON //p' | paste -sd, -)
  if [[ -n "${SERVICE_ROWS}" ]]; then
    ROWS="${ROWS},
    ${SERVICE_ROWS}"
  fi
fi

# Dissemination rows (--dissemination): the staged convoy edit rolled out
# with dissem=unicast vs dissem=gossip at each fleet size, heartbeats ON —
# rollout latency, nodes installed, and control-class bytes on the shared
# bus (the suppression / leaf-slice economy made measurable).
if [[ "${DISSEMINATION}" == "1" ]]; then
  DISSEM_ROWS=$(./build-bench/bench_dissemination "--preset=${PRESET}" \
    | sed -n 's/^BENCH_JSON //p' | paste -sd, -)
  if [[ -n "${DISSEM_ROWS}" ]]; then
    ROWS="${ROWS},
    ${DISSEM_ROWS}"
  fi
fi

# Scenario-family rows (--scenarios): the mobile-convoy churn sweep —
# coverage (fraction of node-time on an exactly-covered mode) vs churn
# rate, with the beyond-f fallback counters. Fingerprints pin the whole
# degradation path: a changed fingerprint for an unchanged seed means the
# nearest-covered fallback behaved differently, not just slower.
if [[ "${SCENARIOS}" == "1" ]]; then
  SCENARIO_ROWS=$(./build-bench/bench_scenarios "--preset=${PRESET}" \
    | sed -n 's/^BENCH_JSON //p' | paste -sd, -)
  if [[ -n "${SCENARIO_ROWS}" ]]; then
    ROWS="${ROWS},
    ${SCENARIO_ROWS}"
  fi
fi

# Strategy-format row (--format): v4 binary images vs v2 text — blob and
# E7-edit patch bytes in both serializations, parse-vs-map install wall
# clock, and the cross-source report-fingerprint equality assertion
# (planned / v2-loaded / v4-mapped runs must serialize identically; the
# bench exits nonzero on divergence — record it, don't kill the harness).
if [[ "${FORMAT}" == "1" ]]; then
  FORMAT_ROWS=$( (./build-bench/bench_format || \
    echo "format bench exited $? (report divergence or failed pass)" >&2) \
    | sed -n 's/^BENCH_JSON //p' | paste -sd, -)
  if [[ -n "${FORMAT_ROWS}" ]]; then
    ROWS="${ROWS},
    ${FORMAT_ROWS}"
  fi
fi

{
  echo '{'
  echo "  \"preset\": \"${PRESET}\","
  echo '  "rows": ['
  echo "    ${ROWS}"
  echo '  ]'
  echo '}'
} > "${OUT}"

echo "wrote ${OUT}:"
cat "${OUT}"
