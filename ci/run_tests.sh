#!/usr/bin/env bash
# Test runner with tiering. Mirrors .github/workflows/ci.yml for
# environments without GitHub Actions.
#
#   ci/run_tests.sh          # tier1: fast unit/integration tests (every push)
#   ci/run_tests.sh --full   # tier1 + tier2 (randomized / equivalence /
#                            # determinism sweeps; scheduled CI and local runs)
#
# Tiers are ctest LABELS assigned in CMakeLists.txt (BTR_TIER2_TESTS).
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL_ARGS=(-L tier1)
if [[ "${1:-}" == "--full" ]]; then
  LABEL_ARGS=()
fi

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure --no-tests=error "${LABEL_ARGS[@]}" -j
