#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite from a clean
# checkout. Mirrors .github/workflows/ci.yml for environments without
# GitHub Actions.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure --no-tests=error -j
