// Unit tests for evidence records, validation, blame, and the pool.

#include <gtest/gtest.h>

#include "src/core/evidence.h"
#include "src/core/golden.h"

namespace btr {
namespace {

class EvidenceTest : public ::testing::Test {
 protected:
  EvidenceTest() : rng_(11), keys_(4, &rng_), workload_(Milliseconds(10)) {
    src_ = workload_.AddSource("src", Microseconds(20), NodeId(0), Criticality::kHigh);
    mid_ = workload_.AddCompute("mid", Microseconds(100), 0, Criticality::kHigh);
    sink_ = workload_.AddSink("sink", Microseconds(20), NodeId(1), Criticality::kHigh,
                              Milliseconds(8));
    workload_.Connect(src_, mid_, 64);
    workload_.Connect(mid_, sink_, 32);
    validator_ = std::make_unique<EvidenceValidator>(&keys_, &workload_,
                                                     EvidenceValidationConfig{});
  }

  // A correctly signed input claim from `producer` hosted on `host`.
  SignedInput MakeInput(TaskId producer, NodeId host, uint64_t period, uint64_t digest) {
    return SignedInput{producer, digest,
                       keys_.SignerFor(host).Sign(InputContentDigest(producer, period, digest))};
  }

  // A full record for `mid_` signed by `host`, with the given output digest.
  std::shared_ptr<OutputRecord> MakeMidRecord(NodeId host, uint64_t period,
                                              uint64_t output_digest, uint64_t input_digest) {
    auto rec = std::make_shared<OutputRecord>();
    rec->task = mid_;
    rec->replica = 0;
    rec->period = period;
    rec->digest = output_digest;
    rec->claimed_inputs = {MakeInput(src_, NodeId(0), period, input_digest)};
    rec->sender = host;
    rec->value_sig = keys_.SignerFor(host).Sign(
        InputContentDigest(mid_, period, output_digest));
    rec->sender_sig = keys_.SignerFor(host).Sign(rec->ContentDigest());
    return rec;
  }

  std::shared_ptr<EvidenceRecord> WrapCommission(std::shared_ptr<const OutputRecord> rec,
                                                 NodeId declarer) {
    auto ev = std::make_shared<EvidenceRecord>();
    ev->kind = EvidenceKind::kCommission;
    ev->declarer = declarer;
    ev->period = rec->period;
    ev->record = std::move(rec);
    ev->declarer_sig = keys_.SignerFor(declarer).Sign(ev->ContentDigest());
    return ev;
  }

  uint64_t HonestMidDigest(uint64_t period, uint64_t input_digest) {
    return ComputeOutput(mid_, period, {{src_, input_digest}});
  }

  Rng rng_;
  KeyStore keys_;
  Dataflow workload_;
  TaskId src_, mid_, sink_;
  std::unique_ptr<EvidenceValidator> validator_;
};

TEST_F(EvidenceTest, CommissionConvictsLyingReplica) {
  const uint64_t input = SourceValue(src_, 5);
  const uint64_t wrong = HonestMidDigest(5, input) ^ 0xBAD;
  auto ev = WrapCommission(MakeMidRecord(NodeId(2), 5, wrong, input), NodeId(3));
  const EvidenceVerdict v = validator_->Validate(*ev);
  EXPECT_TRUE(v.valid);
  EXPECT_EQ(v.convicts, NodeId(2));
  EXPECT_GT(v.cost, 0);
}

TEST_F(EvidenceTest, ConsistentRecordIsNotEvidence) {
  const uint64_t input = SourceValue(src_, 5);
  const uint64_t honest = HonestMidDigest(5, input);
  auto ev = WrapCommission(MakeMidRecord(NodeId(2), 5, honest, input), NodeId(3));
  EXPECT_FALSE(validator_->Validate(*ev).valid);
}

TEST_F(EvidenceTest, CommissionAgainstGarbageInputsConvictsRecordSigner) {
  // The record's claimed input signature is fabricated: the signer vouched
  // for inputs it could not have validated.
  auto rec = MakeMidRecord(NodeId(2), 5, 1234, 777);
  rec->claimed_inputs[0].producer_sig.tag ^= 1;  // break the inner signature
  rec->sender_sig = keys_.SignerFor(NodeId(2)).Sign(rec->ContentDigest());
  auto ev = WrapCommission(rec, NodeId(3));
  const EvidenceVerdict v = validator_->Validate(*ev);
  EXPECT_TRUE(v.valid);
  EXPECT_EQ(v.convicts, NodeId(2));
}

TEST_F(EvidenceTest, UnattributableRecordRejected) {
  auto rec = MakeMidRecord(NodeId(2), 5, 1234, SourceValue(src_, 5));
  rec->sender_sig.tag ^= 1;  // outer signature broken: cannot convict anyone
  auto ev = WrapCommission(rec, NodeId(3));
  EXPECT_FALSE(validator_->Validate(*ev).valid);
}

TEST_F(EvidenceTest, ForgedDeclarerSignatureRejected) {
  const uint64_t input = SourceValue(src_, 5);
  auto ev = WrapCommission(MakeMidRecord(NodeId(2), 5, 99, input), NodeId(3));
  ev->declarer_sig.tag ^= 1;
  EXPECT_FALSE(validator_->Validate(*ev).valid);
}

TEST_F(EvidenceTest, SourceCommissionReplaysSourceValue) {
  auto rec = std::make_shared<OutputRecord>();
  rec->task = src_;
  rec->period = 9;
  rec->digest = SourceValue(src_, 9) ^ 0xF00;  // sensor lies
  rec->sender = NodeId(0);
  rec->value_sig = keys_.SignerFor(NodeId(0)).Sign(
      InputContentDigest(src_, 9, rec->digest));
  rec->sender_sig = keys_.SignerFor(NodeId(0)).Sign(rec->ContentDigest());
  auto ev = WrapCommission(rec, NodeId(1));
  const EvidenceVerdict v = validator_->Validate(*ev);
  EXPECT_TRUE(v.valid);
  EXPECT_EQ(v.convicts, NodeId(0));
}

TEST_F(EvidenceTest, EquivocationConvictsDoubleSigner) {
  auto ev = std::make_shared<EvidenceRecord>();
  ev->kind = EvidenceKind::kEquivocation;
  ev->declarer = NodeId(3);
  ev->period = 4;
  ev->eq_task = mid_;
  ev->eq_a = MakeInput(mid_, NodeId(2), 4, 111);
  ev->eq_b = MakeInput(mid_, NodeId(2), 4, 222);
  ev->declarer_sig = keys_.SignerFor(NodeId(3)).Sign(ev->ContentDigest());
  const EvidenceVerdict v = validator_->Validate(*ev);
  EXPECT_TRUE(v.valid);
  EXPECT_EQ(v.convicts, NodeId(2));
}

TEST_F(EvidenceTest, EquivocationNeedsDifferentDigests) {
  auto ev = std::make_shared<EvidenceRecord>();
  ev->kind = EvidenceKind::kEquivocation;
  ev->declarer = NodeId(3);
  ev->period = 4;
  ev->eq_task = mid_;
  ev->eq_a = MakeInput(mid_, NodeId(2), 4, 111);
  ev->eq_b = MakeInput(mid_, NodeId(2), 4, 111);
  ev->declarer_sig = keys_.SignerFor(NodeId(3)).Sign(ev->ContentDigest());
  EXPECT_FALSE(validator_->Validate(*ev).valid);
}

TEST_F(EvidenceTest, EquivocationNeedsSameSigner) {
  auto ev = std::make_shared<EvidenceRecord>();
  ev->kind = EvidenceKind::kEquivocation;
  ev->declarer = NodeId(3);
  ev->period = 4;
  ev->eq_task = mid_;
  ev->eq_a = MakeInput(mid_, NodeId(1), 4, 111);
  ev->eq_b = MakeInput(mid_, NodeId(2), 4, 222);
  ev->declarer_sig = keys_.SignerFor(NodeId(3)).Sign(ev->ContentDigest());
  EXPECT_FALSE(validator_->Validate(*ev).valid);
}

TEST_F(EvidenceTest, TimingEvidenceOutsideWindowConvicts) {
  const uint64_t input = SourceValue(src_, 2);
  auto rec = MakeMidRecord(NodeId(2), 2, HonestMidDigest(2, input), input);
  auto ev = std::make_shared<EvidenceRecord>();
  ev->kind = EvidenceKind::kTiming;
  ev->declarer = NodeId(1);
  ev->period = 2;
  ev->record = rec;
  ev->window_lo = Milliseconds(20);
  ev->window_hi = Milliseconds(21);
  ev->observed_arrival = Milliseconds(25);
  ev->declarer_sig = keys_.SignerFor(NodeId(1)).Sign(ev->ContentDigest());
  const EvidenceVerdict v = validator_->Validate(*ev);
  EXPECT_TRUE(v.valid);
  EXPECT_EQ(v.convicts, NodeId(2));
}

TEST_F(EvidenceTest, TimingInsideWindowIsBogus) {
  const uint64_t input = SourceValue(src_, 2);
  auto rec = MakeMidRecord(NodeId(2), 2, HonestMidDigest(2, input), input);
  auto ev = std::make_shared<EvidenceRecord>();
  ev->kind = EvidenceKind::kTiming;
  ev->declarer = NodeId(1);
  ev->period = 2;
  ev->record = rec;
  ev->window_lo = Milliseconds(20);
  ev->window_hi = Milliseconds(30);
  ev->observed_arrival = Milliseconds(25);
  ev->declarer_sig = keys_.SignerFor(NodeId(1)).Sign(ev->ContentDigest());
  EXPECT_FALSE(validator_->Validate(*ev).valid);
}

TEST_F(EvidenceTest, PathDeclarationRequiresEndpointDeclarer) {
  auto ev = std::make_shared<EvidenceRecord>();
  ev->kind = EvidenceKind::kPathDeclaration;
  ev->declarer = NodeId(1);
  ev->period = 3;
  ev->path_a = NodeId(1);
  ev->path_b = NodeId(2);
  ev->declarer_sig = keys_.SignerFor(NodeId(1)).Sign(ev->ContentDigest());
  EXPECT_TRUE(validator_->Validate(*ev).valid);
  // Declarations never convict directly.
  EXPECT_FALSE(validator_->Validate(*ev).convicts.valid());

  // A declarer that is not an endpoint is rejected.
  ev->declarer = NodeId(3);
  ev->declarer_sig = keys_.SignerFor(NodeId(3)).Sign(ev->ContentDigest());
  EXPECT_FALSE(validator_->Validate(*ev).valid);
}

TEST_F(EvidenceTest, EndorsementAbuseConvictsEndorser) {
  // Build bogus (consistent) commission evidence, then wrap it with the
  // endorsement of node 2 who forwarded it.
  const uint64_t input = SourceValue(src_, 5);
  auto bogus = WrapCommission(MakeMidRecord(NodeId(1), 5, HonestMidDigest(5, input), input),
                              NodeId(2));
  ASSERT_FALSE(validator_->Validate(*bogus).valid);

  auto abuse = std::make_shared<EvidenceRecord>();
  abuse->kind = EvidenceKind::kEndorsementAbuse;
  abuse->declarer = NodeId(3);
  abuse->period = 5;
  abuse->inner = bogus;
  abuse->endorsement_sig = keys_.SignerFor(NodeId(2)).Sign(bogus->ContentDigest());
  abuse->declarer_sig = keys_.SignerFor(NodeId(3)).Sign(abuse->ContentDigest());
  const EvidenceVerdict v = validator_->Validate(*abuse);
  EXPECT_TRUE(v.valid);
  EXPECT_EQ(v.convicts, NodeId(2));
}

TEST_F(EvidenceTest, EndorsementOfValidEvidenceIsNotAbuse) {
  const uint64_t input = SourceValue(src_, 5);
  auto real = WrapCommission(
      MakeMidRecord(NodeId(1), 5, HonestMidDigest(5, input) ^ 1, input), NodeId(2));
  ASSERT_TRUE(validator_->Validate(*real).valid);

  auto abuse = std::make_shared<EvidenceRecord>();
  abuse->kind = EvidenceKind::kEndorsementAbuse;
  abuse->declarer = NodeId(3);
  abuse->period = 5;
  abuse->inner = real;
  abuse->endorsement_sig = keys_.SignerFor(NodeId(2)).Sign(real->ContentDigest());
  abuse->declarer_sig = keys_.SignerFor(NodeId(3)).Sign(abuse->ContentDigest());
  EXPECT_FALSE(validator_->Validate(*abuse).valid);
}

TEST_F(EvidenceTest, QuickRejectIsCheaperOnBadInnerSignatures) {
  // Same malformed evidence validated by a quick-reject validator and a
  // naive one: the naive validator pays the replay before the signatures.
  auto rec = MakeMidRecord(NodeId(2), 5, 1234, 777);
  rec->claimed_inputs[0].producer_sig.tag ^= 1;
  rec->sender_sig = keys_.SignerFor(NodeId(2)).Sign(rec->ContentDigest());
  auto ev = WrapCommission(rec, NodeId(3));

  EvidenceValidationConfig naive_config;
  naive_config.quick_reject = false;
  EvidenceValidator naive(&keys_, &workload_, naive_config);

  const EvidenceVerdict fast = validator_->Validate(*ev);
  const EvidenceVerdict slow = naive.Validate(*ev);
  EXPECT_TRUE(fast.valid);
  EXPECT_TRUE(slow.valid);
  EXPECT_LT(fast.cost, slow.cost);
}

TEST_F(EvidenceTest, ContentDigestCoversAllFields) {
  const uint64_t input = SourceValue(src_, 5);
  auto a = WrapCommission(MakeMidRecord(NodeId(2), 5, 1, input), NodeId(3));
  auto b = WrapCommission(MakeMidRecord(NodeId(2), 5, 2, input), NodeId(3));
  EXPECT_NE(a->ContentDigest(), b->ContentDigest());
  auto c = WrapCommission(MakeMidRecord(NodeId(2), 5, 1, input), NodeId(1));
  EXPECT_NE(a->ContentDigest(), c->ContentDigest());
}

// --- blame tracker ---

TEST(PathBlame, TwoDistinctPathsConvict) {
  PathBlameTracker blame(2);
  EXPECT_FALSE(blame.AddDeclaration(NodeId(0), NodeId(1), NodeId(1)).has_value());
  auto convicted = blame.AddDeclaration(NodeId(0), NodeId(2), NodeId(2));
  ASSERT_TRUE(convicted.has_value());
  EXPECT_EQ(*convicted, NodeId(0));
  EXPECT_TRUE(blame.IsConvicted(NodeId(0)));
  EXPECT_FALSE(blame.IsConvicted(NodeId(1)));
}

TEST(PathBlame, SingleDeclarerCannotFrame) {
  // Byzantine node 9 declares paths (3,9) and... it can only declare paths
  // it is an endpoint of, so both paths share counterpart 9; node 3 is never
  // implicated on two distinct paths by two distinct declarers.
  PathBlameTracker blame(2);
  EXPECT_FALSE(blame.AddDeclaration(NodeId(3), NodeId(9), NodeId(9)).has_value());
  auto again = blame.AddDeclaration(NodeId(3), NodeId(9), NodeId(9));
  EXPECT_FALSE(again.has_value());
  EXPECT_FALSE(blame.IsConvicted(NodeId(3)));
}

TEST(PathBlame, DuplicateDeclarationsDoNotDoubleCount) {
  PathBlameTracker blame(2);
  blame.AddDeclaration(NodeId(0), NodeId(1), NodeId(1));
  blame.AddDeclaration(NodeId(0), NodeId(1), NodeId(1));
  EXPECT_EQ(blame.DistinctPathsInvolving(NodeId(0)), 1u);
  EXPECT_FALSE(blame.IsConvicted(NodeId(0)));
}

TEST(PathBlame, HigherThresholdNeedsMorePaths) {
  PathBlameTracker blame(3);
  blame.AddDeclaration(NodeId(0), NodeId(1), NodeId(1));
  blame.AddDeclaration(NodeId(0), NodeId(2), NodeId(2));
  EXPECT_FALSE(blame.IsConvicted(NodeId(0)));
  auto convicted = blame.AddDeclaration(NodeId(0), NodeId(3), NodeId(3));
  ASSERT_TRUE(convicted.has_value());
  EXPECT_EQ(*convicted, NodeId(0));
}

TEST(PathBlame, DiscreditedCounterpartLendsNoBlame) {
  // Path (victim, convicted) is fully explained by the convicted node; the
  // victim must not be convicted off the back of it.
  PathBlameTracker blame(2);
  auto discredited = [](NodeId n) { return n == NodeId(9); };
  EXPECT_FALSE(blame.AddDeclaration(NodeId(0), NodeId(9), NodeId(9), 0, discredited).has_value());
  EXPECT_FALSE(blame.AddDeclaration(NodeId(0), NodeId(2), NodeId(2), 0, discredited).has_value());
  EXPECT_FALSE(blame.IsConvicted(NodeId(0)));
  // A second credible path does convict.
  auto convicted = blame.AddDeclaration(NodeId(0), NodeId(3), NodeId(3), 0, discredited);
  ASSERT_TRUE(convicted.has_value());
  EXPECT_EQ(*convicted, NodeId(0));
}

TEST(PathBlame, DiscreditedDeclarerCarriesNoWeight) {
  // Both declarations against node 0 come from the convicted node 9 (as the
  // counterpart endpoint it is also discredited); nothing sticks.
  PathBlameTracker blame(2);
  auto discredited = [](NodeId n) { return n == NodeId(9); };
  // Node 9 frames node 0 via paths it declares itself.
  blame.AddDeclaration(NodeId(0), NodeId(9), NodeId(9), 0, discredited);
  blame.AddDeclaration(NodeId(0), NodeId(9), NodeId(9), 0, discredited);
  EXPECT_FALSE(blame.IsConvicted(NodeId(0)));
  // Even a credible path (0,2) by node 2 plus the discredited one is just
  // one credible path: still below threshold.
  EXPECT_FALSE(blame.AddDeclaration(NodeId(0), NodeId(2), NodeId(2), 0, discredited).has_value());
  EXPECT_FALSE(blame.IsConvicted(NodeId(0)));
}

TEST(PathBlame, StaleDeclarationsOutsideWindowDoNotCombine) {
  // Path (0,1) was declared long ago (a transition blip); a fresh burst of
  // one path (0,2) must not combine with it.
  PathBlameTracker blame(2, /*window_periods=*/8);
  EXPECT_FALSE(blame.AddDeclaration(NodeId(0), NodeId(1), NodeId(1), 5).has_value());
  EXPECT_FALSE(blame.AddDeclaration(NodeId(0), NodeId(2), NodeId(2), 100).has_value());
  EXPECT_FALSE(blame.IsConvicted(NodeId(0)));
  // A second *fresh* path does convict.
  auto convicted = blame.AddDeclaration(NodeId(0), NodeId(3), NodeId(3), 101);
  ASSERT_TRUE(convicted.has_value());
  EXPECT_EQ(*convicted, NodeId(0));
}

TEST(PathBlame, RedeclarationRefreshesTheWindow) {
  PathBlameTracker blame(2, /*window_periods=*/8);
  blame.AddDeclaration(NodeId(0), NodeId(1), NodeId(1), 5);
  // The same path is re-declared within the fresh burst: counts again.
  blame.AddDeclaration(NodeId(0), NodeId(1), NodeId(1), 99);
  auto convicted = blame.AddDeclaration(NodeId(0), NodeId(2), NodeId(2), 100);
  ASSERT_TRUE(convicted.has_value());
  EXPECT_EQ(*convicted, NodeId(0));
}

TEST(PathBlame, ConvictionHappensOnce) {
  PathBlameTracker blame(2);
  blame.AddDeclaration(NodeId(0), NodeId(1), NodeId(1));
  ASSERT_TRUE(blame.AddDeclaration(NodeId(0), NodeId(2), NodeId(2)).has_value());
  EXPECT_FALSE(blame.AddDeclaration(NodeId(0), NodeId(3), NodeId(3)).has_value());
}

// --- pool ---

TEST(EvidencePool, DeduplicatesByContent) {
  Rng rng(1);
  KeyStore keys(2, &rng);
  auto ev = std::make_shared<EvidenceRecord>();
  ev->kind = EvidenceKind::kPathDeclaration;
  ev->declarer = NodeId(0);
  ev->path_a = NodeId(0);
  ev->path_b = NodeId(1);
  ev->declarer_sig = keys.SignerFor(NodeId(0)).Sign(ev->ContentDigest());

  EvidencePool pool;
  EXPECT_TRUE(pool.Insert(ev));
  EXPECT_FALSE(pool.Insert(ev));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.Contains(ev->ContentDigest()));
}

}  // namespace
}  // namespace btr
