// End-to-end integration tests: plan + run + recover on real scenarios.

#include <gtest/gtest.h>

#include "src/core/btr_system.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

BtrConfig DefaultConfig() {
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(500);
  config.seed = 42;
  return config;
}

TEST(Integration, FaultFreeRunIsFullyCorrect) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok()) << system.Plan().ToString();
  auto report = system.Run(100);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->correctness.incorrect_missing, 0u);
  EXPECT_EQ(report->correctness.incorrect_value, 0u);
  EXPECT_EQ(report->correctness.incorrect_late, 0u);
  EXPECT_GT(report->correctness.correct_instances, 0u);
  EXPECT_FALSE(report->correctness.btr_violated);
  EXPECT_EQ(report->correctness.total_instances, report->correctness.correct_instances);
}

TEST(Integration, CrashFaultRecoversWithinBound) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  // Crash a flight computer (node 4+ are compute nodes) mid-run.
  system.AddFault(FaultInjection{NodeId(5), Milliseconds(200), FaultBehavior::kCrash, 0,
                                 NodeId::Invalid(), 0});
  auto report = system.Run(200);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->faults.size(), 1u);
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever)
      << "crash was never detected";
  EXPECT_FALSE(report->correctness.btr_violated)
      << "recovery took " << ToMillisF(report->correctness.max_recovery) << " ms";
  EXPECT_LE(report->correctness.max_recovery, Milliseconds(500));
}

// The node hosting the primary replica of `task_name` in the fault-free plan.
NodeId PrimaryHostOf(const BtrSystem& system, const std::string& task_name) {
  const TaskId task = system.scenario().workload.FindTask(task_name);
  EXPECT_TRUE(task.valid()) << "no task named " << task_name;
  const Plan* root = system.strategy().Lookup(FaultSet());
  EXPECT_NE(root, nullptr);
  return root->placement()[system.planner().graph().PrimaryOf(task)];
}

TEST(Integration, ValueCorruptionRecoversWithinBound) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  // Corrupt the node computing the flight-control law (a replicated,
  // checked compute task), so the checker's replay can prove the fault.
  const NodeId victim = PrimaryHostOf(system, "control_law");
  ASSERT_TRUE(victim.valid());
  system.AddFault(FaultInjection{victim, Milliseconds(200),
                                 FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
  auto report = system.Run(200);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_FALSE(report->correctness.btr_violated)
      << "max recovery " << ToMillisF(report->correctness.max_recovery) << " ms";
}

}  // namespace
}  // namespace btr
