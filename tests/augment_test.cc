// Unit tests for workload augmentation (replicas, checkers, verifiers).

#include <gtest/gtest.h>

#include "src/core/augment.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

Dataflow SimpleChain() {
  Dataflow w(Milliseconds(10));
  const TaskId src = w.AddSource("src", Microseconds(20), NodeId(0), Criticality::kHigh);
  const TaskId mid = w.AddCompute("mid", Microseconds(100), 256, Criticality::kHigh);
  const TaskId sink = w.AddSink("sink", Microseconds(20), NodeId(1), Criticality::kHigh,
                                Milliseconds(8));
  w.Connect(src, mid, 64);
  w.Connect(mid, sink, 32);
  return w;
}

TEST(Augment, ReplicatesComputeTasksOnly) {
  Dataflow w = SimpleChain();
  AugmentConfig config;
  config.replication = 3;
  AugmentedGraph g(&w, 4, config);

  EXPECT_EQ(g.ReplicasOf(w.FindTask("mid")).size(), 3u);
  EXPECT_EQ(g.ReplicasOf(w.FindTask("src")).size(), 1u);
  EXPECT_EQ(g.ReplicasOf(w.FindTask("sink")).size(), 1u);
  EXPECT_TRUE(g.IsReplicated(w.FindTask("mid")));
  EXPECT_FALSE(g.IsReplicated(w.FindTask("src")));
}

TEST(Augment, CheckerOnlyForReplicatedTasks) {
  Dataflow w = SimpleChain();
  AugmentConfig config;
  config.replication = 2;
  AugmentedGraph g(&w, 4, config);

  EXPECT_NE(g.CheckerOf(w.FindTask("mid")), AugmentedGraph::kNone);
  EXPECT_EQ(g.CheckerOf(w.FindTask("src")), AugmentedGraph::kNone);
  EXPECT_EQ(g.CheckerOf(w.FindTask("sink")), AugmentedGraph::kNone);
}

TEST(Augment, CheckerWcetBudgetsReplay) {
  Dataflow w = SimpleChain();
  AugmentConfig config;
  config.replication = 2;
  config.replay_factor = 1.0;
  config.compare_cost = Microseconds(20);
  AugmentedGraph g(&w, 4, config);
  const AugTask& chk = g.task(g.CheckerOf(w.FindTask("mid")));
  EXPECT_EQ(chk.wcet, Microseconds(20) + Microseconds(100));
}

TEST(Augment, VerifierPerNode) {
  Dataflow w = SimpleChain();
  AugmentedGraph g(&w, 5, AugmentConfig{});
  for (uint32_t n = 0; n < 5; ++n) {
    const uint32_t v = g.VerifierOf(NodeId(n));
    ASSERT_NE(v, AugmentedGraph::kNone);
    EXPECT_EQ(g.task(v).kind, AugKind::kVerifier);
    EXPECT_EQ(g.task(v).pinned, NodeId(n));
  }
}

TEST(Augment, PrimaryFeedsAllConsumerReplicasAndCheckers) {
  Dataflow w = SimpleChain();
  AugmentConfig config;
  config.replication = 2;
  AugmentedGraph g(&w, 4, config);

  const uint32_t src_primary = g.PrimaryOf(w.FindTask("src"));
  // src primary -> mid#0, mid#1, chk(mid): 3 out edges.
  EXPECT_EQ(g.OutEdges(src_primary).size(), 3u);

  // Each mid replica reports to chk(mid); chk(mid) also gets src's copy.
  const uint32_t chk = g.CheckerOf(w.FindTask("mid"));
  EXPECT_EQ(g.InEdges(chk).size(), 3u);  // 2 replicas + 1 input copy
}

TEST(Augment, OnlyPrimaryFeedsDownstream) {
  Dataflow w = SimpleChain();
  AugmentConfig config;
  config.replication = 3;
  AugmentedGraph g(&w, 4, config);
  const auto& reps = g.ReplicasOf(w.FindTask("mid"));
  // Primary: sink + chk(mid). Non-primaries: chk(mid) only.
  EXPECT_EQ(g.OutEdges(reps[0]).size(), 2u);
  EXPECT_EQ(g.OutEdges(reps[1]).size(), 1u);
  EXPECT_EQ(g.OutEdges(reps[2]).size(), 1u);
}

TEST(Augment, BelowThresholdCriticalityNotReplicated) {
  Dataflow w(Milliseconds(10));
  const TaskId src = w.AddSource("src", 10, NodeId(0), Criticality::kHigh);
  const TaskId be = w.AddCompute("be", 10, 0, Criticality::kBestEffort);
  const TaskId sink = w.AddSink("sink", 10, NodeId(1), Criticality::kBestEffort,
                                Milliseconds(5));
  w.Connect(src, be, 8);
  w.Connect(be, sink, 8);

  AugmentConfig config;
  config.replication = 2;
  config.replicate_min_criticality = Criticality::kLow;
  AugmentedGraph g(&w, 2, config);
  EXPECT_EQ(g.ReplicasOf(be).size(), 1u);
  EXPECT_EQ(g.CheckerOf(be), AugmentedGraph::kNone);
}

TEST(Augment, TaskCountAccounting) {
  Dataflow w = SimpleChain();
  AugmentConfig config;
  config.replication = 2;
  const size_t nodes = 4;
  AugmentedGraph g(&w, nodes, config);
  // src + sink + 2x mid + chk(mid) + 4 verifiers = 9.
  EXPECT_EQ(g.size(), 9u);
}

TEST(Augment, AvionicsGraphShape) {
  Scenario s = MakeAvionicsScenario();
  AugmentConfig config;
  config.replication = 2;
  AugmentedGraph g(&s.workload, s.topology.node_count(), config);
  // Replicated: fusion, control_law, pressure_ctl, telem_fmt (>= kLow).
  // Not replicated: IFE chain (best effort), sources, sinks.
  EXPECT_TRUE(g.IsReplicated(s.workload.FindTask("att_fusion")));
  EXPECT_TRUE(g.IsReplicated(s.workload.FindTask("control_law")));
  EXPECT_FALSE(g.IsReplicated(s.workload.FindTask("transcode")));
  EXPECT_EQ(g.CheckerOf(s.workload.FindTask("transcode")), AugmentedGraph::kNone);
}

}  // namespace
}  // namespace btr
