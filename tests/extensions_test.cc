// Tests for the extension modules: transition-bound analysis, (m,k)-firm
// miss patterns, and strategy serialization.

#include <gtest/gtest.h>

#include "src/core/btr_system.h"
#include "src/core/strategy_io.h"
#include "src/core/transition_analysis.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

BtrConfig DefaultConfig(uint32_t f = 1) {
  BtrConfig config;
  config.planner.max_faults = f;
  config.planner.recovery_bound = Milliseconds(500);
  config.seed = 7;
  return config;
}

class PlannedAvionics : public ::testing::Test {
 protected:
  PlannedAvionics() : system_(MakeAvionicsScenario(), DefaultConfig()) {
    EXPECT_TRUE(system_.Plan().ok());
  }
  BtrSystem system_;
};

// --- transition analysis ---

TEST_F(PlannedAvionics, TransitionAnalysisCoversAllModeEdges) {
  TransitionAnalysisConfig config;
  config.network = system_.config().planner.network;
  config.period = system_.scenario().workload.period();
  config.recovery_bound = Milliseconds(500);
  const TransitionAnalysis analysis = AnalyzeTransitions(
      system_.strategy(), system_.planner().graph(), system_.scenario().topology, config);
  // f = 1: one transition per single-fault mode.
  EXPECT_EQ(analysis.transitions.size(), system_.scenario().topology.node_count());
  EXPECT_GT(analysis.worst_total, 0);
  ASSERT_NE(analysis.Worst(), nullptr);
  EXPECT_EQ(analysis.Worst()->total, analysis.worst_total);
}

TEST_F(PlannedAvionics, TransitionBoundFitsConfiguredR) {
  TransitionAnalysisConfig config;
  config.network = system_.config().planner.network;
  config.period = system_.scenario().workload.period();
  config.recovery_bound = Milliseconds(500);
  const TransitionAnalysis analysis = AnalyzeTransitions(
      system_.strategy(), system_.planner().graph(), system_.scenario().topology, config);
  EXPECT_TRUE(analysis.fits_recovery_bound)
      << "worst transition " << ToMillisF(analysis.worst_total) << " ms exceeds R";
}

TEST_F(PlannedAvionics, MeasuredRecoveryNeverExceedsAnalyzedBound) {
  // The offline bound must dominate every observed recovery.
  TransitionAnalysisConfig config;
  config.network = system_.config().planner.network;
  config.period = system_.scenario().workload.period();
  config.recovery_bound = Milliseconds(500);
  const TransitionAnalysis analysis = AnalyzeTransitions(
      system_.strategy(), system_.planner().graph(), system_.scenario().topology, config);

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    BtrConfig run_config = DefaultConfig();
    run_config.seed = seed;
    BtrSystem system(MakeAvionicsScenario(), run_config);
    ASSERT_TRUE(system.Plan().ok());
    const Plan* root = system.strategy().Lookup(FaultSet());
    const TaskId law = system.scenario().workload.FindTask("control_law");
    const NodeId victim = root->placement()[system.planner().graph().PrimaryOf(law)];
    system.AddFault(
        {victim, Milliseconds(100), FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
    auto report = system.Run(150);
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->correctness.max_recovery, analysis.worst_total) << "seed " << seed;
  }
}

TEST(TransitionAnalysis, DetectionBoundDefaultsToFourPeriods) {
  Scenario s = MakeScadaScenario();
  BtrSystem system(s, DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  TransitionAnalysisConfig config;
  config.period = s.workload.period();
  config.recovery_bound = Seconds(2);
  const TransitionAnalysis analysis = AnalyzeTransitions(
      system.strategy(), system.planner().graph(), system.scenario().topology, config);
  EXPECT_EQ(analysis.detection_bound, 4 * s.workload.period());
}

TEST(TransitionAnalysis, StateTransferGrowsTheBound) {
  // Hand-built plans: in the child mode the stateful task's new host holds
  // no prior copy, so the analysis must charge a state transfer whose cost
  // scales with the state size. (The real planner's stickiness usually
  // parks migrants on a sibling-replica host precisely to avoid this.)
  auto build = [](uint32_t state_bytes) {
    Topology topo = Topology::SharedBus(6, 10'000'000, Microseconds(2));
    Dataflow w(Milliseconds(20));
    const TaskId src = w.AddSource("src", Microseconds(30), NodeId(0), Criticality::kHigh);
    const TaskId mid = w.AddCompute("mid", Microseconds(200), state_bytes, Criticality::kHigh);
    const TaskId sink =
        w.AddSink("sink", Microseconds(30), NodeId(1), Criticality::kHigh, Milliseconds(15));
    w.Connect(src, mid, 64);
    w.Connect(mid, sink, 64);
    AugmentConfig aug_config;
    aug_config.replication = 2;
    AugmentedGraph graph(&w, topo.node_count(), aug_config);
    const auto& reps = graph.ReplicasOf(mid);

    auto make_plan = [&](const FaultSet& faults, NodeId rep0, NodeId rep1) {
      PlanBody body;
      body.placement.assign(graph.size(), NodeId::Invalid());
      body.start.assign(graph.size(), 0);
      body.tables.assign(topo.node_count(), ScheduleTable());
      body.set_edge_budget(std::vector<SimDuration>(graph.edges().size(), -1));
      body.placement[reps[0]] = rep0;
      if (rep1.valid()) {
        body.placement[reps[1]] = rep1;
      }
      return Plan(faults, std::make_shared<RoutingTable>(topo, faults.nodes()),
                  std::move(body));
    };
    Strategy strategy;
    strategy.Insert(make_plan(FaultSet(), NodeId(2), NodeId(3)));
    // After {n2}: replica 0 lands on n4, which held nothing before.
    strategy.Insert(make_plan(FaultSet({NodeId(2)}), NodeId(4), NodeId(3)));

    TransitionAnalysisConfig config;
    config.period = Milliseconds(20);
    config.recovery_bound = Seconds(10);
    return AnalyzeTransitions(strategy, graph, topo, config).worst_total;
  };
  const SimDuration heavy = build(200'000);
  const SimDuration none = build(0);
  EXPECT_GT(heavy, none);
  // The gap should be roughly the serialization of 200 KB over the control
  // slice (10 Mbps / 6 senders * 15% = 250 kbps -> ~6.4 s).
  EXPECT_GT(heavy - none, Seconds(3));
}

// --- (m,k)-firm miss patterns ---

TEST(MissPattern, SatisfiesMkWindows) {
  MissPattern p;
  p.correct = {true, true, false, true, true, false, true, true};
  // Every window of 3 has >= 2 correct.
  EXPECT_TRUE(p.SatisfiesMK(2, 3));
  EXPECT_FALSE(p.SatisfiesMK(3, 3));
  EXPECT_TRUE(p.SatisfiesMK(1, 2));
}

TEST(MissPattern, ConsecutiveMissesViolate) {
  MissPattern p;
  p.correct = {true, false, false, true, true, true};
  EXPECT_FALSE(p.SatisfiesMK(2, 3));  // window {f,f,t} has 1 < 2
  EXPECT_TRUE(p.SatisfiesMK(1, 3));
}

TEST(MissPattern, DegenerateParameters) {
  MissPattern p;
  p.correct = {true, true};
  EXPECT_FALSE(p.SatisfiesMK(3, 2));  // m > k is unsatisfiable
  EXPECT_FALSE(p.SatisfiesMK(1, 0));
}

TEST_F(PlannedAvionics, RunSatisfiesWeaklyHardConstraintUnderFault) {
  const TaskId law = system_.scenario().workload.FindTask("control_law");
  const Plan* root = system_.strategy().Lookup(FaultSet());
  const NodeId victim = root->placement()[system_.planner().graph().PrimaryOf(law)];
  system_.AddFault(
      {victim, Milliseconds(200), FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
  auto report = system_.Run(200);
  ASSERT_TRUE(report.ok());

  // During a single recovery window, the elevator flow must stay within a
  // (m=45, k=50) weakly-hard constraint: at most 5 bad instances per 50.
  Monitor monitor(&system_.scenario().workload, &system_.strategy(), &system_.adversary(),
                  Milliseconds(500));
  // Re-running just for the pattern would be wasteful; instead assert the
  // report-level equivalent: bad instances attributable to the fault are few.
  ASSERT_EQ(report->correctness.recoveries.size(), 1u);
  EXPECT_LE(report->correctness.recoveries[0].bad_instances, 5u);
}

// --- strategy serialization ---

TEST_F(PlannedAvionics, StrategyRoundTripsThroughText) {
  const AugmentedGraph& graph = system_.planner().graph();
  const Topology& topo = system_.scenario().topology;
  const std::string blob = SaveStrategy(system_.strategy(), graph, topo);
  EXPECT_GT(blob.size(), 100u);

  auto loaded = LoadStrategy(blob, graph, topo);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->mode_count(), system_.strategy().mode_count());

  for (const FaultSet& faults : system_.strategy().PlannedSets()) {
    const Plan* original = system_.strategy().Lookup(faults);
    const Plan* restored = loaded->Lookup(faults);
    ASSERT_NE(restored, nullptr) << faults.ToString();
    EXPECT_EQ(original->placement(), restored->placement());
    EXPECT_EQ(original->start(), restored->start());
    EXPECT_EQ(original->shed_sinks(), restored->shed_sinks());
    EXPECT_EQ(original->edge_budget(), restored->edge_budget());
    EXPECT_DOUBLE_EQ(original->utility(), restored->utility());
    for (size_t n = 0; n < topo.node_count(); ++n) {
      ASSERT_EQ(original->tables()[n].size(), restored->tables()[n].size());
      for (size_t i = 0; i < original->tables()[n].size(); ++i) {
        EXPECT_EQ(original->tables()[n].entries()[i].job, restored->tables()[n].entries()[i].job);
        EXPECT_EQ(original->tables()[n].entries()[i].start,
                  restored->tables()[n].entries()[i].start);
      }
    }
    // Routing rebuilt from the fault set must exclude the faulty relays.
    for (NodeId x : faults.nodes()) {
      for (size_t a = 0; a < topo.node_count(); ++a) {
        for (size_t b = 0; b < topo.node_count(); ++b) {
          const NodeId na(static_cast<uint32_t>(a));
          const NodeId nb(static_cast<uint32_t>(b));
          if (na == nb || na == x || nb == x) {
            continue;
          }
          EXPECT_FALSE(restored->routing->RouteUsesRelay(na, nb, x));
        }
      }
    }
  }
}

TEST_F(PlannedAvionics, LoadRejectsCorruptBlobs) {
  const AugmentedGraph& graph = system_.planner().graph();
  const Topology& topo = system_.scenario().topology;
  EXPECT_FALSE(LoadStrategy("garbage", graph, topo).ok());
  EXPECT_FALSE(LoadStrategy("BTRSTRATEGY v1\nDIM 1 2 3\n", graph, topo).ok());
  EXPECT_FALSE(LoadStrategy("BTRSTRATEGY v2\nDIM 1 2 3\n", graph, topo).ok());

  std::string blob = SaveStrategy(system_.strategy(), graph, topo);
  // Truncate mid-mode.
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(LoadStrategy(blob, graph, topo).ok());
}

TEST_F(PlannedAvionics, LoadRejectsOutOfRangeRecords) {
  const AugmentedGraph& graph = system_.planner().graph();
  const Topology& topo = system_.scenario().topology;
  std::string blob = "BTRSTRATEGY v2\nDIM " + std::to_string(graph.size()) + " " +
                     std::to_string(topo.node_count()) + " " +
                     std::to_string(graph.edges().size()) + "\n";
  blob += "PLANS 1\nPLAN 0\nP 99999 0 0\nEND\nMODES 1\nMODE 0 REF 0\n";
  EXPECT_FALSE(LoadStrategy(blob, graph, topo).ok());
}

}  // namespace
}  // namespace btr
