// Robustness tests for the strategy_io v2 parser: a strategy blob is
// installed on every node, so a corrupted or adversarial blob must fail
// with a clean Status — never crash, never silently load a half-strategy.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/core/strategy_io.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

struct IoFixture {
  Scenario scenario = MakeScadaScenario(4);
  PlannerConfig config;
  std::unique_ptr<Planner> planner;
  std::string blob;

  IoFixture() {
    config.max_faults = 1;
    planner = std::make_unique<Planner>(&scenario.topology, &scenario.workload, config);
    auto strategy = planner->BuildStrategy();
    EXPECT_TRUE(strategy.ok()) << strategy.status().ToString();
    blob = SaveStrategy(*strategy, planner->graph(), scenario.topology);
  }

  StatusOr<Strategy> Load(const std::string& text) const {
    return LoadStrategy(text, planner->graph(), scenario.topology);
  }
};

TEST(StrategyIo, ValidBlobRoundTrips) {
  IoFixture f;
  auto loaded = f.Load(f.blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->provenance().present);
  EXPECT_EQ(loaded->provenance().planner_fingerprint, f.planner->Fingerprint());
  EXPECT_EQ(SaveStrategy(*loaded, f.planner->graph(), f.scenario.topology), f.blob);
}

TEST(StrategyIo, GarbageMagicRejected) {
  IoFixture f;
  EXPECT_FALSE(f.Load("").ok());
  EXPECT_FALSE(f.Load("garbage").ok());
  EXPECT_FALSE(f.Load("NOTSTRATEGY v2\nDIM 1 1 1\n").ok());
  EXPECT_FALSE(f.Load("BTRSTRATEGY v1\n" + f.blob.substr(f.blob.find('\n') + 1)).ok());
  std::string flipped = f.blob;
  flipped[0] = 'X';
  EXPECT_FALSE(f.Load(flipped).ok());
}

TEST(StrategyIo, EveryTruncationFailsCleanly) {
  IoFixture f;
  // Cut the blob at every line boundary and at a stride of raw byte
  // offsets: only the complete blob may load; every prefix must return a
  // clean error (and, under the sanitizer job, must not trip ASan/UBSan).
  for (size_t cut = 0; cut < f.blob.size(); ++cut) {
    const bool line_boundary = cut == 0 || f.blob[cut - 1] == '\n';
    if (!line_boundary && cut % 7 != 0) {
      continue;
    }
    auto loaded = f.Load(f.blob.substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "truncation at byte " << cut << " loaded successfully";
  }
  EXPECT_TRUE(f.Load(f.blob).ok());
}

TEST(StrategyIo, OutOfRangeBodyRefRejected) {
  IoFixture f;
  // Rewrite the first MODE's body reference to a body id that was never
  // declared.
  const size_t ref = f.blob.find(" REF ");
  ASSERT_NE(ref, std::string::npos);
  std::string bad = f.blob.substr(0, ref) + " REF 9999" +
                    f.blob.substr(f.blob.find('\n', ref));
  auto loaded = f.Load(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("body reference"), std::string::npos);
}

TEST(StrategyIo, DuplicateModeRejected) {
  IoFixture f;
  // Duplicate the first MODE line (and bump the MODES count to match, so
  // the duplicate-id check is what fires, not a count mismatch).
  const size_t modes_at = f.blob.find("MODES ");
  ASSERT_NE(modes_at, std::string::npos);
  const size_t count_end = f.blob.find('\n', modes_at);
  const size_t count = std::stoul(f.blob.substr(modes_at + 6, count_end - modes_at - 6));
  const size_t first_mode = f.blob.find("MODE ", count_end);
  const size_t first_mode_end = f.blob.find('\n', first_mode) + 1;
  const std::string mode_line = f.blob.substr(first_mode, first_mode_end - first_mode);
  std::string bad = "MODES " + std::to_string(count + 1) +
                    f.blob.substr(count_end, first_mode_end - count_end) + mode_line +
                    f.blob.substr(first_mode_end);
  bad = f.blob.substr(0, modes_at) + bad;
  auto loaded = f.Load(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("duplicate MODE"), std::string::npos);
}

TEST(StrategyIo, ForgedCountsRejected) {
  IoFixture f;
  auto patch = [&](const std::string& needle, const std::string& replacement) {
    const size_t at = f.blob.find(needle);
    EXPECT_NE(at, std::string::npos) << needle;
    return f.blob.substr(0, at) + replacement + f.blob.substr(f.blob.find('\n', at));
  };
  const size_t plans_at = f.blob.find("PLANS ");
  const size_t plans =
      std::stoul(f.blob.substr(plans_at + 6, f.blob.find('\n', plans_at) - plans_at - 6));
  // A PLANS count beyond the blob size is a forged header.
  EXPECT_FALSE(f.Load(patch("PLANS ", "PLANS 99999999999")).ok());
  // More declared plans than PLAN blocks present.
  EXPECT_FALSE(f.Load(patch("PLANS ", "PLANS " + std::to_string(plans + 1))).ok());
  // MODES count larger than the number of MODE lines.
  EXPECT_FALSE(f.Load(patch("MODES ", "MODES 99999999999")).ok());
}

TEST(StrategyIo, MalformedRecordsRejected) {
  IoFixture f;
  auto corrupt_first = [&](const std::string& tag, const std::string& line) {
    const size_t at = f.blob.find("\n" + tag + " ");
    if (at == std::string::npos) {
      return std::string();
    }
    return f.blob.substr(0, at + 1) + line + f.blob.substr(f.blob.find('\n', at + 1));
  };
  // Placement onto a node outside the topology.
  const std::string bad_p = corrupt_first("P", "P 0 9999 0");
  if (!bad_p.empty()) {
    EXPECT_FALSE(f.Load(bad_p).ok());
  }
  // Table entry for a job outside the augmented universe.
  const std::string bad_t = corrupt_first("T", "T 0 999999 0 10");
  if (!bad_t.empty()) {
    EXPECT_FALSE(f.Load(bad_t).ok());
  }
  // Edge budget for an edge index outside the graph.
  const std::string bad_b = corrupt_first("B", "B 999999 10");
  if (!bad_b.empty()) {
    EXPECT_FALSE(f.Load(bad_b).ok());
  }
  // Unknown record tag inside a body.
  const std::string bad_tag = corrupt_first("U", "Z 1 2 3");
  if (!bad_tag.empty()) {
    EXPECT_FALSE(f.Load(bad_tag).ok());
  }
  // MODE whose fault node is outside the topology.
  const size_t mode_at = f.blob.find("MODE 1 ");
  if (mode_at != std::string::npos) {
    std::string bad = f.blob;
    bad.replace(mode_at, 8, "MODE 1 9");
    EXPECT_FALSE(f.Load(bad).ok());
  }
}

TEST(StrategyIo, MalformedProvenanceRejected) {
  IoFixture f;
  const size_t prov_at = f.blob.find("PROV ");
  ASSERT_NE(prov_at, std::string::npos);
  const size_t prov_end = f.blob.find('\n', prov_at);
  std::string bad = f.blob.substr(0, prov_at) + "PROV zzz qqq" + f.blob.substr(prov_end);
  EXPECT_FALSE(f.Load(bad).ok());
  // A blob without provenance is still accepted (older v2 writers).
  std::string stripped = f.blob.substr(0, prov_at) + f.blob.substr(prov_end + 1);
  auto loaded = f.Load(stripped);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->provenance().present);
}

TEST(StrategyIo, ZeroDegradedModesRoundTrips) {
  // f = 0: a strategy with zero degraded modes (only the fault-free plan).
  // This edge was never round-tripped before; its exhaustive truncation
  // sweep is what exposed that a blob missing only its final newline was
  // accepted by the newline-insensitive token parser (the line-boundary /
  // stride-7 sweep above happens to skip that cut).
  Scenario scenario = MakeScadaScenario(4);
  PlannerConfig config;
  config.max_faults = 0;
  Planner planner(&scenario.topology, &scenario.workload, config);
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();
  EXPECT_EQ(strategy->mode_count(), 1u);

  const std::string blob = SaveStrategy(*strategy, planner.graph(), scenario.topology);
  auto loaded = LoadStrategy(blob, planner.graph(), scenario.topology);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->mode_count(), 1u);
  EXPECT_TRUE(loaded->provenance().present);
  EXPECT_EQ(loaded->provenance().max_faults, 0u);
  EXPECT_EQ(SaveStrategy(*loaded, planner.graph(), scenario.topology), blob);

  // The blob is small enough to sweep every byte: no strict prefix may
  // load — including the blob minus its final newline.
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    EXPECT_FALSE(LoadStrategy(blob.substr(0, cut), planner.graph(), scenario.topology).ok())
        << "truncation at byte " << cut << " loaded successfully";
  }
}

TEST(StrategyIo, MissingFinalNewlineRejected) {
  IoFixture f;
  ASSERT_EQ(f.blob.back(), '\n');
  EXPECT_FALSE(f.Load(f.blob.substr(0, f.blob.size() - 1)).ok());
}

TEST(StrategyIo, TrailingDataRejected) {
  IoFixture f;
  EXPECT_FALSE(f.Load(f.blob + "EXTRA 1 2 3\n").ok());
}

TEST(StrategyIo, DimensionMismatchRejected) {
  IoFixture f;
  // A blob saved for a different topology must not load against this one.
  Scenario other = MakeScadaScenario(5);
  Planner other_planner(&other.topology, &other.workload, f.config);
  auto strategy = other_planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok());
  const std::string blob = SaveStrategy(*strategy, other_planner.graph(), other.topology);
  EXPECT_FALSE(f.Load(blob).ok());
}

}  // namespace
}  // namespace btr
