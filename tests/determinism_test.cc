// Determinism regression tests for the data-plane hot path.
//
// The runtime's per-period state lives in flat hash maps and pooled
// objects; none of that machinery may leak into behavior. These tests run
// the same seeded scenario repeatedly and require byte-identical serialized
// reports (correctness counts, network stats, per-node stats, fault
// outcomes) — any hash-iteration-order or allocation-order dependence shows
// up as a diff here.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/btr_system.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

BtrConfig Config(uint64_t seed) {
  BtrConfig config;
  config.planner.max_faults = 2;
  config.planner.recovery_bound = Milliseconds(500);
  config.seed = seed;
  return config;
}

// A run that exercises every hot path: dispatch, heartbeats, a crash
// (path-blame detection), and a value corruption (commission evidence,
// verification budget, mode switch + state migration).
std::string SerializedRun(uint64_t seed) {
  BtrSystem system(MakeAvionicsScenario(6), Config(seed));
  EXPECT_TRUE(system.Plan().ok());

  FaultInjection crash;
  crash.node = NodeId(0);
  crash.manifest_at = Milliseconds(400);
  crash.behavior = FaultBehavior::kCrash;
  system.AddFault(crash);

  FaultInjection corrupt;
  corrupt.node = NodeId(1);
  corrupt.manifest_at = Milliseconds(900);
  corrupt.behavior = FaultBehavior::kValueCorruption;
  system.AddFault(corrupt);

  auto report = system.Run(120);
  EXPECT_TRUE(report.ok());
  return SerializeRunReport(*report);
}

TEST(Determinism, SameSeedSameScenarioByteIdenticalReport) {
  const std::string first = SerializedRun(7);
  const std::string second = SerializedRun(7);
  // EXPECT_EQ on the full dumps: a mismatch prints the first differing line.
  EXPECT_EQ(first, second);
}

TEST(Determinism, RepeatedRunsOfOneSystemAreIdentical) {
  // Re-running the same BtrSystem object must also be stable: pooled
  // packets, payload arenas, and flat maps are rebuilt per run and must not
  // carry state across runs.
  BtrSystem system(MakeAvionicsScenario(6), Config(3));
  ASSERT_TRUE(system.Plan().ok());
  FaultInjection crash;
  crash.node = NodeId(2);
  crash.manifest_at = Milliseconds(300);
  crash.behavior = FaultBehavior::kCrash;
  system.AddFault(crash);

  auto first = system.Run(100);
  auto second = system.Run(100);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(SerializeRunReport(*first), SerializeRunReport(*second));
}

TEST(Determinism, SerializationIsSensitiveToScenarioChanges) {
  // Sanity check that the serialization can detect divergence at all: a
  // different fault time must produce a different dump.
  BtrSystem system(MakeAvionicsScenario(6), Config(7));
  ASSERT_TRUE(system.Plan().ok());
  FaultInjection crash;
  crash.node = NodeId(0);
  crash.manifest_at = Milliseconds(200);  // earlier than SerializedRun's
  crash.behavior = FaultBehavior::kCrash;
  system.AddFault(crash);
  auto report = system.Run(120);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(SerializeRunReport(*report), SerializedRun(7));
}

TEST(Determinism, FingerprintMatchesSerialization) {
  const std::string dump = SerializedRun(7);
  BtrSystem system(MakeAvionicsScenario(6), Config(7));
  ASSERT_TRUE(system.Plan().ok());
  FaultInjection crash;
  crash.node = NodeId(0);
  crash.manifest_at = Milliseconds(400);
  crash.behavior = FaultBehavior::kCrash;
  system.AddFault(crash);
  FaultInjection corrupt;
  corrupt.node = NodeId(1);
  corrupt.manifest_at = Milliseconds(900);
  corrupt.behavior = FaultBehavior::kValueCorruption;
  system.AddFault(corrupt);
  auto report = system.Run(120);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(FingerprintRunReport(*report), HashString(dump));
}

// --- Shard-count invariance -------------------------------------------------
//
// The conservative-parallel engine's contract: sharding is a speed knob,
// never a semantics knob. The same seeded scenario must produce a
// byte-identical serialized report at every shard count, with shards=1
// reducing exactly to the classic single-queue loop. These oracles force
// BTR_SHARD_EXEC=threads so real worker threads, mailboxes, and the
// conservative window handshake are on the hook even on single-core CI
// hosts (where the auto policy would quietly fall back to sequential
// windows and prove nothing).

// Runs `configure`d E7-scale system (8 interchangeable flight computers,
// f=2) once per shard count and requires all dumps byte-identical.
template <typename ConfigureFaults>
void ExpectShardInvariant(uint64_t seed, uint64_t periods, ConfigureFaults configure) {
  setenv("BTR_SHARD_EXEC", "threads", 1);
  std::string baseline;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    BtrSystem system(MakeAvionicsScenario(8), Config(seed));
    system.set_shards(shards);
    ASSERT_TRUE(system.Plan().ok());
    configure(system);
    auto report = system.Run(periods);
    ASSERT_TRUE(report.ok());
    const std::string dump = SerializeRunReport(*report);
    if (shards == 1) {
      baseline = dump;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(dump, baseline) << "report diverged at shards=" << shards;
    }
  }
  unsetenv("BTR_SHARD_EXEC");
}

TEST(ShardInvariance, FaultFreeE7ByteIdenticalAcrossShardCounts) {
  ExpectShardInvariant(11, 80, [](BtrSystem&) {});
}

TEST(ShardInvariance, FaultyE7ByteIdenticalAcrossShardCounts) {
  // Crash + value corruption: detection, evidence distribution,
  // verification, and the mode switch all cross shard boundaries.
  ExpectShardInvariant(11, 80, [](BtrSystem& system) {
    FaultInjection crash;
    crash.node = NodeId(0);
    crash.manifest_at = Milliseconds(300);
    crash.behavior = FaultBehavior::kCrash;
    system.AddFault(crash);
    FaultInjection corrupt;
    corrupt.node = NodeId(1);
    corrupt.manifest_at = Milliseconds(700);
    corrupt.behavior = FaultBehavior::kValueCorruption;
    system.AddFault(corrupt);
  });
}

TEST(ShardInvariance, LossyRunByteIdenticalAcrossShardCounts) {
  // Loss draws are stateless hashes of (seed, link, packet id, hop index) —
  // never per-shard RNG state — so a lossy run must honor the same
  // contract as a clean one: byte-identical reports at every shard count
  // under real worker threads, and byte-identical to the sequential
  // single-queue loop.
  BtrConfig config = Config(11);
  config.planner.network.loss_probability = 0.02;
  setenv("BTR_SHARD_EXEC", "threads", 1);
  std::string baseline;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    BtrSystem system(MakeAvionicsScenario(8), config);
    system.set_shards(shards);
    ASSERT_TRUE(system.Plan().ok());
    auto report = system.Run(80);
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report->network.packets_dropped_loss, 0u);
    const std::string dump = SerializeRunReport(*report);
    if (shards == 1) {
      baseline = dump;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(dump, baseline) << "lossy report diverged at shards=" << shards;
    }
  }
  setenv("BTR_SHARD_EXEC", "seq", 1);
  BtrSystem system(MakeAvionicsScenario(8), config);
  system.set_shards(1);
  ASSERT_TRUE(system.Plan().ok());
  auto report = system.Run(80);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(SerializeRunReport(*report), baseline)
      << "sequential shards=1 diverged from the threaded runs";
  unsetenv("BTR_SHARD_EXEC");
}

TEST(ShardInvariance, TransientHealingFaultByteIdenticalAcrossShardCounts) {
  // A transient corruption that heals (`until`): the heal edge and any
  // conviction racing it must land in the same canonical order regardless
  // of which shard executes the victim.
  ExpectShardInvariant(13, 80, [](BtrSystem& system) {
    FaultInjection transient;
    transient.node = NodeId(2);
    transient.manifest_at = Milliseconds(250);
    transient.until = Milliseconds(650);
    transient.behavior = FaultBehavior::kValueCorruption;
    system.AddFault(transient);
  });
}

}  // namespace
}  // namespace btr
