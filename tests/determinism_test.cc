// Determinism regression tests for the data-plane hot path.
//
// The runtime's per-period state lives in flat hash maps and pooled
// objects; none of that machinery may leak into behavior. These tests run
// the same seeded scenario repeatedly and require byte-identical serialized
// reports (correctness counts, network stats, per-node stats, fault
// outcomes) — any hash-iteration-order or allocation-order dependence shows
// up as a diff here.

#include <gtest/gtest.h>

#include <string>

#include "src/core/btr_system.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

BtrConfig Config(uint64_t seed) {
  BtrConfig config;
  config.planner.max_faults = 2;
  config.planner.recovery_bound = Milliseconds(500);
  config.seed = seed;
  return config;
}

// A run that exercises every hot path: dispatch, heartbeats, a crash
// (path-blame detection), and a value corruption (commission evidence,
// verification budget, mode switch + state migration).
std::string SerializedRun(uint64_t seed) {
  BtrSystem system(MakeAvionicsScenario(6), Config(seed));
  EXPECT_TRUE(system.Plan().ok());

  FaultInjection crash;
  crash.node = NodeId(0);
  crash.manifest_at = Milliseconds(400);
  crash.behavior = FaultBehavior::kCrash;
  system.AddFault(crash);

  FaultInjection corrupt;
  corrupt.node = NodeId(1);
  corrupt.manifest_at = Milliseconds(900);
  corrupt.behavior = FaultBehavior::kValueCorruption;
  system.AddFault(corrupt);

  auto report = system.Run(120);
  EXPECT_TRUE(report.ok());
  return SerializeRunReport(*report);
}

TEST(Determinism, SameSeedSameScenarioByteIdenticalReport) {
  const std::string first = SerializedRun(7);
  const std::string second = SerializedRun(7);
  // EXPECT_EQ on the full dumps: a mismatch prints the first differing line.
  EXPECT_EQ(first, second);
}

TEST(Determinism, RepeatedRunsOfOneSystemAreIdentical) {
  // Re-running the same BtrSystem object must also be stable: pooled
  // packets, payload arenas, and flat maps are rebuilt per run and must not
  // carry state across runs.
  BtrSystem system(MakeAvionicsScenario(6), Config(3));
  ASSERT_TRUE(system.Plan().ok());
  FaultInjection crash;
  crash.node = NodeId(2);
  crash.manifest_at = Milliseconds(300);
  crash.behavior = FaultBehavior::kCrash;
  system.AddFault(crash);

  auto first = system.Run(100);
  auto second = system.Run(100);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(SerializeRunReport(*first), SerializeRunReport(*second));
}

TEST(Determinism, SerializationIsSensitiveToScenarioChanges) {
  // Sanity check that the serialization can detect divergence at all: a
  // different fault time must produce a different dump.
  BtrSystem system(MakeAvionicsScenario(6), Config(7));
  ASSERT_TRUE(system.Plan().ok());
  FaultInjection crash;
  crash.node = NodeId(0);
  crash.manifest_at = Milliseconds(200);  // earlier than SerializedRun's
  crash.behavior = FaultBehavior::kCrash;
  system.AddFault(crash);
  auto report = system.Run(120);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(SerializeRunReport(*report), SerializedRun(7));
}

TEST(Determinism, FingerprintMatchesSerialization) {
  const std::string dump = SerializedRun(7);
  BtrSystem system(MakeAvionicsScenario(6), Config(7));
  ASSERT_TRUE(system.Plan().ok());
  FaultInjection crash;
  crash.node = NodeId(0);
  crash.manifest_at = Milliseconds(400);
  crash.behavior = FaultBehavior::kCrash;
  system.AddFault(crash);
  FaultInjection corrupt;
  corrupt.node = NodeId(1);
  corrupt.manifest_at = Milliseconds(900);
  corrupt.behavior = FaultBehavior::kValueCorruption;
  system.AddFault(corrupt);
  auto report = system.Run(120);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(FingerprintRunReport(*report), HashString(dump));
}

}  // namespace
}  // namespace btr
