// Unit tests for the simulated signature scheme.

#include <gtest/gtest.h>

#include "src/crypto/keys.h"

namespace btr {
namespace {

class KeysTest : public ::testing::Test {
 protected:
  KeysTest() : rng_(77), keys_(4, &rng_) {}
  Rng rng_;
  KeyStore keys_;
};

TEST_F(KeysTest, SignVerifyRoundTrip) {
  Signer signer = keys_.SignerFor(NodeId(1));
  const Signature sig = signer.Sign(0xDEADBEEF);
  EXPECT_TRUE(keys_.Verify(sig, 0xDEADBEEF));
}

TEST_F(KeysTest, VerifyRejectsWrongDigest) {
  Signer signer = keys_.SignerFor(NodeId(1));
  const Signature sig = signer.Sign(0xDEADBEEF);
  EXPECT_FALSE(keys_.Verify(sig, 0xDEADBEEE));
}

TEST_F(KeysTest, SignaturesAreSignerSpecific) {
  const Signature sig1 = keys_.SignerFor(NodeId(1)).Sign(42);
  const Signature sig2 = keys_.SignerFor(NodeId(2)).Sign(42);
  EXPECT_NE(sig1.tag, sig2.tag);
  // A signature cannot be re-attributed: claiming node 2 signed node 1's
  // tag fails verification.
  Signature forged = sig1;
  forged.signer = NodeId(2);
  EXPECT_FALSE(keys_.Verify(forged, 42));
}

TEST_F(KeysTest, ForgedTagFails) {
  Signature forged;
  forged.signer = NodeId(3);
  forged.tag = 0x123456789ABCDEFULL;
  EXPECT_FALSE(keys_.Verify(forged, 42));
}

TEST_F(KeysTest, InvalidSignerRejected) {
  Signature sig;
  sig.signer = NodeId::Invalid();
  EXPECT_FALSE(keys_.Verify(sig, 1));
  sig.signer = NodeId(99);  // out of range
  EXPECT_FALSE(keys_.Verify(sig, 1));
}

TEST_F(KeysTest, DistinctDigestsDistinctTags) {
  Signer signer = keys_.SignerFor(NodeId(0));
  EXPECT_NE(signer.Sign(1).tag, signer.Sign(2).tag);
}

TEST(KeyStoreSeed, DifferentSeedsDifferentKeys) {
  Rng a(1);
  Rng b(2);
  KeyStore ka(2, &a);
  KeyStore kb(2, &b);
  const Signature sig = ka.SignerFor(NodeId(0)).Sign(7);
  EXPECT_FALSE(kb.Verify(sig, 7));
}

}  // namespace
}  // namespace btr
