// Unit tests for the correctness monitor's Definition 3.1 evaluation.

#include <gtest/gtest.h>

#include <set>

#include "src/core/monitor.h"
#include "src/core/planner.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

// Fixture: a planned SCADA scenario plus a configurable adversary, with the
// monitor fed synthetic observations (no runtime involved).
class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : scenario_(MakeScadaScenario()) {
    PlannerConfig config;
    config.max_faults = 1;
    planner_ = std::make_unique<Planner>(&scenario_.topology, &scenario_.workload, config);
    auto strategy = planner_->BuildStrategy();
    EXPECT_TRUE(strategy.ok());
    strategy_ = std::move(strategy).value();
  }

  // Feeds golden outputs for all sinks over [0, periods), except where the
  // caller overrides.
  void FeedGolden(Monitor* monitor, uint64_t periods,
                  const std::set<std::pair<uint32_t, uint64_t>>& skip = {},
                  const std::set<std::pair<uint32_t, uint64_t>>& corrupt = {}) {
    const SimDuration p_len = scenario_.workload.period();
    for (uint64_t p = 0; p < periods; ++p) {
      for (TaskId sink : scenario_.workload.SinkIds()) {
        if (skip.count({sink.value(), p}) > 0) {
          continue;
        }
        uint64_t digest = monitor->oracle().Golden(sink, p);
        if (corrupt.count({sink.value(), p}) > 0) {
          digest ^= 0xBAD;
        }
        const SimTime at = static_cast<SimTime>(p) * p_len +
                           scenario_.workload.task(sink).relative_deadline - Microseconds(10);
        monitor->RecordSinkOutput(sink, p, digest, at);
      }
    }
  }

  Scenario scenario_;
  std::unique_ptr<Planner> planner_;
  Strategy strategy_;
};

TEST_F(MonitorTest, AllGoldenIsAllCorrect) {
  AdversarySpec adversary;
  Monitor monitor(&scenario_.workload, &strategy_, &adversary, Milliseconds(500));
  FeedGolden(&monitor, 20);
  const CorrectnessReport report = monitor.Evaluate(20);
  EXPECT_EQ(report.correct_instances, report.total_instances);
  EXPECT_FALSE(report.btr_violated);
  EXPECT_EQ(report.max_recovery, 0);
}

TEST_F(MonitorTest, MissingOutputWithoutFaultViolates) {
  AdversarySpec adversary;
  Monitor monitor(&scenario_.workload, &strategy_, &adversary, Milliseconds(500));
  const TaskId sink = scenario_.workload.SinkIds()[0];
  FeedGolden(&monitor, 20, {{sink.value(), 5}});
  const CorrectnessReport report = monitor.Evaluate(20);
  EXPECT_EQ(report.incorrect_missing, 1u);
  EXPECT_TRUE(report.btr_violated);
}

TEST_F(MonitorTest, BadOutputsWithinROfFaultAreExcused) {
  const SimDuration period = scenario_.workload.period();  // 50 ms
  AdversarySpec adversary;
  adversary.Add({NodeId(3), static_cast<SimTime>(4) * period, FaultBehavior::kCrash, 0,
                 NodeId::Invalid(), 0});
  Monitor monitor(&scenario_.workload, &strategy_, &adversary, Milliseconds(500));
  const TaskId sink = scenario_.workload.SinkIds()[0];
  // Wrong values in periods 4-8: within 500 ms (10 periods) of the fault.
  FeedGolden(&monitor, 40, {},
             {{sink.value(), 4}, {sink.value(), 5}, {sink.value(), 6}, {sink.value(), 8}});
  const CorrectnessReport report = monitor.Evaluate(40);
  EXPECT_EQ(report.incorrect_value, 4u);
  EXPECT_FALSE(report.btr_violated);
  ASSERT_EQ(report.recoveries.size(), 1u);
  EXPECT_GT(report.recoveries[0].recovery_time, 0);
  EXPECT_LE(report.recoveries[0].recovery_time, Milliseconds(500));
}

TEST_F(MonitorTest, BadOutputBeyondRViolates) {
  const SimDuration period = scenario_.workload.period();
  AdversarySpec adversary;
  adversary.Add({NodeId(3), static_cast<SimTime>(4) * period, FaultBehavior::kCrash, 0,
                 NodeId::Invalid(), 0});
  Monitor monitor(&scenario_.workload, &strategy_, &adversary, Milliseconds(500));
  const TaskId sink = scenario_.workload.SinkIds()[0];
  // Period 20 is 16 periods (800 ms) after the fault: beyond R.
  FeedGolden(&monitor, 40, {}, {{sink.value(), 20}});
  const CorrectnessReport report = monitor.Evaluate(40);
  EXPECT_TRUE(report.btr_violated);
  EXPECT_GT(report.max_recovery, Milliseconds(500));
}

TEST_F(MonitorTest, ShedSinksAreNotExpected) {
  // Fault on the historian node sheds the historian flow; its absence after
  // the manifestation must count as shed, not missing.
  const TaskId historian = scenario_.workload.FindTask("historian");
  const NodeId hist_node = scenario_.workload.task(historian).pinned_node;
  const Plan* degraded = strategy_.Lookup(FaultSet({hist_node}));
  ASSERT_NE(degraded, nullptr);
  ASSERT_FALSE(degraded->ServesSink(historian));

  const SimDuration period = scenario_.workload.period();
  AdversarySpec adversary;
  adversary.Add({hist_node, static_cast<SimTime>(10) * period, FaultBehavior::kCrash, 0,
                 NodeId::Invalid(), 0});
  Monitor monitor(&scenario_.workload, &strategy_, &adversary, Milliseconds(500));
  // The historian stops outputting from period 10 on (its node is dead).
  std::set<std::pair<uint32_t, uint64_t>> skip;
  for (uint64_t p = 10; p < 40; ++p) {
    skip.insert({historian.value(), p});
  }
  FeedGolden(&monitor, 40, skip);
  const CorrectnessReport report = monitor.Evaluate(40);
  EXPECT_FALSE(report.btr_violated);
  EXPECT_GE(report.shed_instances, 30u);
  EXPECT_EQ(report.incorrect_missing, 0u);
}

TEST_F(MonitorTest, LateOutputCountsAsIncorrect) {
  AdversarySpec adversary;
  adversary.Add({NodeId(3), 0, FaultBehavior::kDelay, Milliseconds(45), NodeId::Invalid(), 0});
  Monitor monitor(&scenario_.workload, &strategy_, &adversary, Milliseconds(500));
  const TaskId sink = scenario_.workload.SinkIds()[0];
  const TaskSpec& spec = scenario_.workload.task(sink);
  // Period 0: correct value but after the deadline.
  monitor.RecordSinkOutput(sink, 0, monitor.oracle().Golden(sink, 0),
                           spec.relative_deadline + Milliseconds(1));
  const CorrectnessReport report = monitor.Evaluate(1);
  EXPECT_EQ(report.incorrect_late, 1u);
  EXPECT_EQ(report.correct_instances, report.total_instances - report.incorrect_late -
                                          report.incorrect_missing - report.incorrect_value);
}

TEST_F(MonitorTest, ManifestedBeforeTracksTimeline) {
  AdversarySpec adversary;
  adversary.Add({NodeId(2), Milliseconds(100), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  adversary.Add({NodeId(3), Milliseconds(300), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  Monitor monitor(&scenario_.workload, &strategy_, &adversary, Milliseconds(500));
  EXPECT_EQ(monitor.ManifestedBefore(Milliseconds(50)).size(), 0u);
  EXPECT_EQ(monitor.ManifestedBefore(Milliseconds(200)).size(), 1u);
  EXPECT_EQ(monitor.ManifestedBefore(Milliseconds(301)).size(), 2u);
}

TEST_F(MonitorTest, PlanUtilityDropsWithFaults) {
  AdversarySpec adversary;
  Monitor monitor(&scenario_.workload, &strategy_, &adversary, Milliseconds(500));
  const double full = monitor.PlanUtility(FaultSet());
  const TaskId historian = scenario_.workload.FindTask("historian");
  const NodeId hist_node = scenario_.workload.task(historian).pinned_node;
  EXPECT_LT(monitor.PlanUtility(FaultSet({hist_node})), full);
  // Unknown (beyond f) fault sets have zero guaranteed utility.
  EXPECT_EQ(monitor.PlanUtility(FaultSet({NodeId(0), NodeId(1), NodeId(2)})), 0.0);
}

TEST_F(MonitorTest, DuplicateSinkOutputsKeepFirst) {
  AdversarySpec adversary;
  Monitor monitor(&scenario_.workload, &strategy_, &adversary, Milliseconds(500));
  const TaskId sink = scenario_.workload.SinkIds()[0];
  monitor.RecordSinkOutput(sink, 0, monitor.oracle().Golden(sink, 0), Milliseconds(1));
  monitor.RecordSinkOutput(sink, 0, 0xBAD, Milliseconds(2));  // later duplicate ignored
  FeedGolden(&monitor, 1, {{sink.value(), 0}});
  const CorrectnessReport report = monitor.Evaluate(1);
  EXPECT_EQ(report.incorrect_value, 0u);
}

}  // namespace
}  // namespace btr
