// Unit tests for fault sets, plan deltas, and strategies.

#include <gtest/gtest.h>

#include "src/core/plan.h"

namespace btr {
namespace {

TEST(FaultSet, SortedAndDeduplicated) {
  FaultSet s({NodeId(3), NodeId(1), NodeId(3), NodeId(2)});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.nodes()[0], NodeId(1));
  EXPECT_EQ(s.nodes()[2], NodeId(3));
}

TEST(FaultSet, AddIsIdempotent) {
  FaultSet s;
  EXPECT_TRUE(s.Add(NodeId(5)));
  EXPECT_FALSE(s.Add(NodeId(5)));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(NodeId(5)));
  EXPECT_FALSE(s.Contains(NodeId(4)));
}

TEST(FaultSet, WithProducesSortedCopy) {
  FaultSet s({NodeId(5)});
  const FaultSet t = s.With(NodeId(2));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.nodes()[0], NodeId(2));
}

TEST(FaultSet, CoversSubsets) {
  FaultSet big({NodeId(1), NodeId(2), NodeId(3)});
  EXPECT_TRUE(big.Covers(FaultSet({NodeId(1), NodeId(3)})));
  EXPECT_TRUE(big.Covers(FaultSet()));
  EXPECT_FALSE(big.Covers(FaultSet({NodeId(4)})));
}

TEST(FaultSet, EqualityAndOrdering) {
  EXPECT_EQ(FaultSet({NodeId(2), NodeId(1)}), FaultSet({NodeId(1), NodeId(2)}));
  EXPECT_LT(FaultSet({NodeId(1)}), FaultSet({NodeId(2)}));
  EXPECT_LT(FaultSet(), FaultSet({NodeId(0)}));
}

TEST(FaultSet, ToStringFormat) {
  EXPECT_EQ(FaultSet().ToString(), "{}");
  EXPECT_EQ(FaultSet({NodeId(2), NodeId(0)}).ToString(), "{n0,n2}");
}

// Minimal augmented graph for delta tests.
struct DeltaFixture {
  Dataflow workload{Milliseconds(10)};
  std::unique_ptr<AugmentedGraph> graph;

  DeltaFixture() {
    const TaskId src = workload.AddSource("s", 10, NodeId(0), Criticality::kHigh);
    const TaskId mid = workload.AddCompute("m", 10, 512, Criticality::kHigh);
    const TaskId sink = workload.AddSink("k", 10, NodeId(1), Criticality::kHigh,
                                         Milliseconds(5));
    workload.Connect(src, mid, 8);
    workload.Connect(mid, sink, 8);
    AugmentConfig config;
    config.replication = 2;
    graph = std::make_unique<AugmentedGraph>(&workload, 3, config);
  }

  PlanBody EmptyBody() const {
    PlanBody body;
    body.placement.assign(graph->size(), NodeId::Invalid());
    body.start.assign(graph->size(), -1);
    return body;
  }

  Plan MakePlan(FaultSet faults, PlanBody body) const {
    return Plan(std::move(faults), nullptr, std::move(body));
  }
};

TEST(PlanDelta, IdenticalPlansHaveZeroDelta) {
  DeltaFixture fx;
  PlanBody body = fx.EmptyBody();
  body.placement[0] = NodeId(0);
  body.placement[1] = NodeId(1);
  const Plan a = fx.MakePlan(FaultSet(), std::move(body));
  const PlanDelta d = ComputeDelta(a, a, *fx.graph);
  EXPECT_EQ(d.tasks_moved, 0u);
  EXPECT_EQ(d.tasks_started, 0u);
  EXPECT_EQ(d.tasks_stopped, 0u);
  EXPECT_EQ(d.state_bytes_moved, 0u);
}

TEST(PlanDelta, CountsMovesStartsStops) {
  DeltaFixture fx;
  const auto& reps = fx.graph->ReplicasOf(fx.workload.FindTask("m"));
  PlanBody body_a = fx.EmptyBody();
  PlanBody body_b = fx.EmptyBody();
  // Replica 0 moves node0 -> node2 (512 bytes of state).
  body_a.placement[reps[0]] = NodeId(0);
  body_b.placement[reps[0]] = NodeId(2);
  // Replica 1 stops.
  body_a.placement[reps[1]] = NodeId(1);
  // Source starts (no state).
  const uint32_t src_aug = fx.graph->PrimaryOf(fx.workload.FindTask("s"));
  body_b.placement[src_aug] = NodeId(0);

  const Plan a = fx.MakePlan(FaultSet(), std::move(body_a));
  const Plan b = fx.MakePlan(FaultSet(), std::move(body_b));
  const PlanDelta d = ComputeDelta(a, b, *fx.graph);
  EXPECT_EQ(d.tasks_moved, 1u);
  EXPECT_EQ(d.tasks_stopped, 1u);
  EXPECT_EQ(d.tasks_started, 1u);
  EXPECT_EQ(d.state_bytes_moved, 512u);
}

TEST(Strategy, InsertAndLookup) {
  Strategy strategy;
  PlanBody body;
  body.utility = 7.0;
  strategy.Insert(Plan(FaultSet({NodeId(1)}), nullptr, std::move(body)));
  ASSERT_NE(strategy.Lookup(FaultSet({NodeId(1)})), nullptr);
  EXPECT_EQ(strategy.Lookup(FaultSet({NodeId(1)}))->utility(), 7.0);
  EXPECT_EQ(strategy.Lookup(FaultSet({NodeId(2)})), nullptr);
  EXPECT_EQ(strategy.mode_count(), 1u);
  EXPECT_EQ(strategy.unique_plan_count(), 1u);
}

TEST(Strategy, LookupIsExactMatch) {
  Strategy strategy;
  strategy.Insert(Plan(FaultSet(), nullptr, PlanBody()));  // empty fault set
  EXPECT_NE(strategy.Lookup(FaultSet()), nullptr);
  EXPECT_EQ(strategy.Lookup(FaultSet({NodeId(0)})), nullptr);
}

TEST(Strategy, PlannedSetsEnumerates) {
  Strategy strategy;
  strategy.Insert(Plan(FaultSet({NodeId(2)}), nullptr, PlanBody()));
  strategy.Insert(Plan(FaultSet(), nullptr, PlanBody()));
  const auto sets = strategy.PlannedSets();
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], FaultSet());  // canonical order: {} < {n2}
  EXPECT_EQ(sets[1], FaultSet({NodeId(2)}));
}

TEST(Strategy, DedupSharesIdenticalBodies) {
  DeltaFixture fx;
  Strategy strategy;
  PlanBody body = fx.EmptyBody();
  body.placement[0] = NodeId(0);
  const Plan* a = strategy.Insert(fx.MakePlan(FaultSet(), body));
  const Plan* b = strategy.Insert(fx.MakePlan(FaultSet({NodeId(2)}), body));
  EXPECT_EQ(strategy.mode_count(), 2u);
  EXPECT_EQ(strategy.unique_plan_count(), 1u);
  EXPECT_EQ(strategy.dedup_hits(), 1u);
  EXPECT_EQ(a->body.get(), b->body.get());  // physically shared
  EXPECT_NE(a->faults, b->faults);          // per-mode identity kept
  EXPECT_LT(strategy.DedupRatio(), 1.0);    // storage shrank vs verbatim

  // A different schedule must get its own body.
  PlanBody other = fx.EmptyBody();
  other.placement[0] = NodeId(1);
  const Plan* c = strategy.Insert(fx.MakePlan(FaultSet({NodeId(1)}), std::move(other)));
  EXPECT_EQ(strategy.unique_plan_count(), 2u);
  EXPECT_NE(c->body.get(), a->body.get());
}

TEST(StrategyIndex, FindsEveryModeAndRejectsUnknown) {
  DeltaFixture fx;
  Strategy strategy;
  strategy.Insert(fx.MakePlan(FaultSet(), fx.EmptyBody()));
  strategy.Insert(fx.MakePlan(FaultSet({NodeId(0)}), fx.EmptyBody()));
  strategy.Insert(fx.MakePlan(FaultSet({NodeId(0), NodeId(2)}), fx.EmptyBody()));

  StrategyIndex index(strategy);
  EXPECT_EQ(index.size(), 3u);
  for (const FaultSet& faults : strategy.PlannedSets()) {
    EXPECT_EQ(index.Find(faults), strategy.Lookup(faults)) << faults.ToString();
  }
  EXPECT_EQ(index.Find(FaultSet({NodeId(1)})), nullptr);
  EXPECT_EQ(StrategyIndex().Find(FaultSet()), nullptr);
}

TEST(Strategy, MemoryFootprintGrowsWithPlans) {
  DeltaFixture fx;
  Strategy strategy;
  strategy.Insert(fx.MakePlan(FaultSet(), fx.EmptyBody()));
  const size_t one = strategy.MemoryFootprintBytes();
  strategy.Insert(fx.MakePlan(FaultSet({NodeId(0)}), fx.EmptyBody()));
  EXPECT_GT(strategy.MemoryFootprintBytes(), one);
}

TEST(Strategy, FootprintCountsSharedBodiesOnce) {
  DeltaFixture fx;
  PlanBody body = fx.EmptyBody();
  body.placement[0] = NodeId(0);

  Strategy deduped;
  deduped.Insert(fx.MakePlan(FaultSet(), body));
  deduped.Insert(fx.MakePlan(FaultSet({NodeId(1)}), body));
  deduped.Insert(fx.MakePlan(FaultSet({NodeId(2)}), body));

  // Three modes, one body: footprint must be far below three full bodies.
  const size_t body_bytes = body.FootprintBytes();
  EXPECT_LT(deduped.MemoryFootprintBytes(), 2 * body_bytes);
  EXPECT_GE(deduped.MemoryFootprintBytes(), body_bytes);
}

}  // namespace
}  // namespace btr
