// Unit tests for fault sets, plan deltas, and strategies.

#include <gtest/gtest.h>

#include "src/core/plan.h"

namespace btr {
namespace {

TEST(FaultSet, SortedAndDeduplicated) {
  FaultSet s({NodeId(3), NodeId(1), NodeId(3), NodeId(2)});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.nodes()[0], NodeId(1));
  EXPECT_EQ(s.nodes()[2], NodeId(3));
}

TEST(FaultSet, AddIsIdempotent) {
  FaultSet s;
  EXPECT_TRUE(s.Add(NodeId(5)));
  EXPECT_FALSE(s.Add(NodeId(5)));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(NodeId(5)));
  EXPECT_FALSE(s.Contains(NodeId(4)));
}

TEST(FaultSet, WithProducesSortedCopy) {
  FaultSet s({NodeId(5)});
  const FaultSet t = s.With(NodeId(2));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.nodes()[0], NodeId(2));
}

TEST(FaultSet, CoversSubsets) {
  FaultSet big({NodeId(1), NodeId(2), NodeId(3)});
  EXPECT_TRUE(big.Covers(FaultSet({NodeId(1), NodeId(3)})));
  EXPECT_TRUE(big.Covers(FaultSet()));
  EXPECT_FALSE(big.Covers(FaultSet({NodeId(4)})));
}

TEST(FaultSet, EqualityAndOrdering) {
  EXPECT_EQ(FaultSet({NodeId(2), NodeId(1)}), FaultSet({NodeId(1), NodeId(2)}));
  EXPECT_LT(FaultSet({NodeId(1)}), FaultSet({NodeId(2)}));
  EXPECT_LT(FaultSet(), FaultSet({NodeId(0)}));
}

TEST(FaultSet, ToStringFormat) {
  EXPECT_EQ(FaultSet().ToString(), "{}");
  EXPECT_EQ(FaultSet({NodeId(2), NodeId(0)}).ToString(), "{n0,n2}");
}

// Minimal augmented graph for delta tests.
struct DeltaFixture {
  Dataflow workload{Milliseconds(10)};
  std::unique_ptr<AugmentedGraph> graph;

  DeltaFixture() {
    const TaskId src = workload.AddSource("s", 10, NodeId(0), Criticality::kHigh);
    const TaskId mid = workload.AddCompute("m", 10, 512, Criticality::kHigh);
    const TaskId sink = workload.AddSink("k", 10, NodeId(1), Criticality::kHigh,
                                         Milliseconds(5));
    workload.Connect(src, mid, 8);
    workload.Connect(mid, sink, 8);
    AugmentConfig config;
    config.replication = 2;
    graph = std::make_unique<AugmentedGraph>(&workload, 3, config);
  }

  Plan EmptyPlan() const {
    Plan p;
    p.placement.assign(graph->size(), NodeId::Invalid());
    p.start.assign(graph->size(), -1);
    return p;
  }
};

TEST(PlanDelta, IdenticalPlansHaveZeroDelta) {
  DeltaFixture fx;
  Plan a = fx.EmptyPlan();
  a.placement[0] = NodeId(0);
  a.placement[1] = NodeId(1);
  const PlanDelta d = ComputeDelta(a, a, *fx.graph);
  EXPECT_EQ(d.tasks_moved, 0u);
  EXPECT_EQ(d.tasks_started, 0u);
  EXPECT_EQ(d.tasks_stopped, 0u);
  EXPECT_EQ(d.state_bytes_moved, 0u);
}

TEST(PlanDelta, CountsMovesStartsStops) {
  DeltaFixture fx;
  const auto& reps = fx.graph->ReplicasOf(fx.workload.FindTask("m"));
  Plan a = fx.EmptyPlan();
  Plan b = fx.EmptyPlan();
  // Replica 0 moves node0 -> node2 (512 bytes of state).
  a.placement[reps[0]] = NodeId(0);
  b.placement[reps[0]] = NodeId(2);
  // Replica 1 stops.
  a.placement[reps[1]] = NodeId(1);
  // Source starts (no state).
  const uint32_t src_aug = fx.graph->PrimaryOf(fx.workload.FindTask("s"));
  b.placement[src_aug] = NodeId(0);

  const PlanDelta d = ComputeDelta(a, b, *fx.graph);
  EXPECT_EQ(d.tasks_moved, 1u);
  EXPECT_EQ(d.tasks_stopped, 1u);
  EXPECT_EQ(d.tasks_started, 1u);
  EXPECT_EQ(d.state_bytes_moved, 512u);
}

TEST(Strategy, InsertAndLookup) {
  Strategy strategy;
  Plan p;
  p.faults = FaultSet({NodeId(1)});
  p.utility = 7.0;
  strategy.Insert(p);
  ASSERT_NE(strategy.Lookup(FaultSet({NodeId(1)})), nullptr);
  EXPECT_EQ(strategy.Lookup(FaultSet({NodeId(1)}))->utility, 7.0);
  EXPECT_EQ(strategy.Lookup(FaultSet({NodeId(2)})), nullptr);
  EXPECT_EQ(strategy.mode_count(), 1u);
}

TEST(Strategy, LookupIsExactMatch) {
  Strategy strategy;
  Plan root;
  strategy.Insert(root);  // empty fault set
  EXPECT_NE(strategy.Lookup(FaultSet()), nullptr);
  EXPECT_EQ(strategy.Lookup(FaultSet({NodeId(0)})), nullptr);
}

TEST(Strategy, PlannedSetsEnumerates) {
  Strategy strategy;
  Plan a;
  a.faults = FaultSet({NodeId(2)});
  Plan b;
  b.faults = FaultSet();
  strategy.Insert(a);
  strategy.Insert(b);
  const auto sets = strategy.PlannedSets();
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], FaultSet());  // map order: {} < {n2}
  EXPECT_EQ(sets[1], FaultSet({NodeId(2)}));
}

TEST(Strategy, MemoryFootprintGrowsWithPlans) {
  DeltaFixture fx;
  Strategy strategy;
  Plan a = fx.EmptyPlan();
  strategy.Insert(a);
  const size_t one = strategy.MemoryFootprintBytes();
  Plan b = fx.EmptyPlan();
  b.faults = FaultSet({NodeId(0)});
  strategy.Insert(b);
  EXPECT_GT(strategy.MemoryFootprintBytes(), one);
}

}  // namespace
}  // namespace btr
