// Unit tests for the offline planner: plan invariants, degradation,
// strategy construction, stickiness, and lookahead.

#include <gtest/gtest.h>

#include <set>

#include "src/core/planner.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

PlannerConfig Config(uint32_t f) {
  PlannerConfig config;
  config.max_faults = f;
  return config;
}

// Checks the structural invariants every plan must satisfy.
void CheckPlanInvariants(const Planner& planner, const Scenario& s, const Plan& plan) {
  const AugmentedGraph& g = planner.graph();
  const SimDuration period = s.workload.period();

  // 1. No task on a faulty node; pinned tasks on their pinned node.
  for (uint32_t id = 0; id < g.size(); ++id) {
    const NodeId node = plan.placement()[id];
    if (!node.valid()) {
      continue;
    }
    EXPECT_FALSE(plan.faults.Contains(node)) << g.task(id).name << " placed on faulty node";
    if (g.task(id).pinned.valid()) {
      EXPECT_EQ(node, g.task(id).pinned) << g.task(id).name;
    }
  }
  // 2. Replica dispersion: no two replicas of a task on the same node, and
  //    the checker is never colocated with a replica of its task.
  for (const TaskSpec& t : s.workload.tasks()) {
    std::set<NodeId> used;
    for (uint32_t rep : g.ReplicasOf(t.id)) {
      const NodeId node = plan.placement()[rep];
      if (node.valid()) {
        EXPECT_TRUE(used.insert(node).second) << t.name << " replicas colocated";
      }
    }
    const uint32_t chk = g.CheckerOf(t.id);
    if (chk != AugmentedGraph::kNone && plan.placement()[chk].valid()) {
      EXPECT_EQ(used.count(plan.placement()[chk]), 0u) << t.name << " checker colocated";
    }
  }
  // 3. Tables valid (sorted, non-overlapping, inside the period) and
  //    consistent with placement.
  for (size_t n = 0; n < s.topology.node_count(); ++n) {
    const ScheduleTable& table = plan.tables()[n];
    EXPECT_TRUE(table.Validate(period).ok()) << table.Validate(period).ToString();
    for (const ScheduleEntry& e : table.entries()) {
      EXPECT_EQ(plan.placement()[e.job], NodeId(static_cast<uint32_t>(n)));
      EXPECT_EQ(plan.start()[e.job], e.start);
      EXPECT_EQ(e.duration, g.task(e.job).wcet);
    }
  }
  // 4. Precedence with communication budgets holds.
  const auto& edges = g.edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    const AugEdge& e = edges[i];
    if (!plan.placement()[e.from].valid() || !plan.placement()[e.to].valid()) {
      continue;
    }
    const SimDuration producer_finish = plan.start()[e.from] + g.task(e.from).wcet;
    EXPECT_GE(plan.start()[e.to], producer_finish + (plan.edge_budget()[i] > 0
                                                       ? plan.edge_budget()[i]
                                                       : 0))
        << g.task(e.from).name << " -> " << g.task(e.to).name;
  }
  // 5. Served sink deadlines met.
  for (TaskId sink : s.workload.SinkIds()) {
    if (!plan.ServesSink(sink)) {
      continue;
    }
    const uint32_t aug = g.PrimaryOf(sink);
    ASSERT_TRUE(plan.placement()[aug].valid());
    EXPECT_LE(plan.start()[aug] + g.task(aug).wcet, s.workload.task(sink).relative_deadline);
  }
}

TEST(Planner, RootPlanServesEverythingOnAvionics) {
  Scenario s = MakeAvionicsScenario();
  Planner planner(&s.topology, &s.workload, Config(1));
  auto plan = planner.PlanForMode(FaultSet(), {});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->shed_sinks().empty());
  CheckPlanInvariants(planner, s, *plan);
}

TEST(Planner, PlanInvariantsHoldForEverySingleFaultMode) {
  Scenario s = MakeAvionicsScenario();
  Planner planner(&s.topology, &s.workload, Config(1));
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();
  for (const FaultSet& faults : strategy->PlannedSets()) {
    const Plan* plan = strategy->Lookup(faults);
    ASSERT_NE(plan, nullptr);
    CheckPlanInvariants(planner, s, *plan);
  }
}

TEST(Planner, StrategyHasOnePlanPerSubset) {
  Scenario s = MakeScadaScenario(4);
  const size_t n = s.topology.node_count();
  Planner planner(&s.topology, &s.workload, Config(2));
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok());
  EXPECT_EQ(strategy->mode_count(), 1 + n + n * (n - 1) / 2);
}

TEST(Planner, ReplicationScalesWithF) {
  Scenario s = MakeAvionicsScenario(8);
  Planner planner(&s.topology, &s.workload, Config(2));
  EXPECT_EQ(planner.graph().ReplicasOf(s.workload.FindTask("control_law")).size(), 3u);
  auto root = planner.PlanForMode(FaultSet(), {});
  ASSERT_TRUE(root.ok());
  // All 3 replicas placed in the root mode.
  size_t placed = 0;
  for (uint32_t rep : planner.graph().ReplicasOf(s.workload.FindTask("control_law"))) {
    if (root->placement()[rep].valid()) {
      ++placed;
    }
  }
  EXPECT_EQ(placed, 3u);
}

TEST(Planner, DegradedModesKeepFewerReplicas) {
  Scenario s = MakeAvionicsScenario(8);
  Planner planner(&s.topology, &s.workload, Config(2));
  auto root = planner.PlanForMode(FaultSet(), {});
  ASSERT_TRUE(root.ok());
  auto one_fault = planner.PlanForMode(FaultSet({NodeId(9)}), {&root.value()});
  ASSERT_TRUE(one_fault.ok());
  size_t placed = 0;
  for (uint32_t rep : planner.graph().ReplicasOf(s.workload.FindTask("control_law"))) {
    if (one_fault->placement()[rep].valid()) {
      ++placed;
    }
  }
  // f - k + 1 = 2 - 1 + 1 = 2 replicas.
  EXPECT_EQ(placed, 2u);
}

TEST(Planner, FaultySensorNodeShedsDependentFlows) {
  Scenario s = MakeAvionicsScenario();
  Planner planner(&s.topology, &s.workload, Config(1));
  // Node 0 hosts gyro + accel: losing it makes the elevator flow unservable.
  auto plan = planner.PlanForMode(FaultSet({NodeId(0)}), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->ServesSink(s.workload.FindTask("elevator")));
  // The cabin-pressure loop does not depend on node 0 and must survive.
  EXPECT_TRUE(plan->ServesSink(s.workload.FindTask("outflow_valve")));
  CheckPlanInvariants(planner, s, *plan);
}

TEST(Planner, UtilityReflectsShedding) {
  Scenario s = MakeAvionicsScenario();
  Planner planner(&s.topology, &s.workload, Config(1));
  auto root = planner.PlanForMode(FaultSet(), {});
  auto degraded = planner.PlanForMode(FaultSet({NodeId(0)}), {});
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(degraded.ok());
  EXPECT_GT(root->utility(), degraded->utility());
}

TEST(Planner, SheddingDropsLowestCriticalityFirst) {
  // Force scarcity: tiny compute capacity (2 nodes) so something must shed.
  Scenario s = MakeAvionicsScenario(2);
  Planner planner(&s.topology, &s.workload, Config(1));
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok());
  for (const FaultSet& faults : strategy->PlannedSets()) {
    const Plan* plan = strategy->Lookup(faults);
    // If anything safety-critical was shed, everything best-effort must have
    // been shed first (unless pinned-node loss forced it).
    bool sc_shed = false;
    bool be_served = false;
    for (TaskId sink : s.workload.SinkIds()) {
      const TaskSpec& spec = s.workload.task(sink);
      const bool pinned_lost = faults.Contains(spec.pinned_node);
      if (pinned_lost) {
        continue;
      }
      bool sources_lost = false;
      for (TaskId anc : s.workload.AncestorsOf(sink)) {
        const TaskSpec& a = s.workload.task(anc);
        if (a.kind == TaskKind::kSource && faults.Contains(a.pinned_node)) {
          sources_lost = true;
        }
      }
      if (sources_lost) {
        continue;
      }
      if (spec.criticality == Criticality::kSafetyCritical && !plan->ServesSink(sink)) {
        sc_shed = true;
      }
      if (spec.criticality == Criticality::kBestEffort && plan->ServesSink(sink)) {
        be_served = true;
      }
    }
    EXPECT_FALSE(sc_shed && be_served)
        << "mode " << faults.ToString() << " shed safety-critical before best-effort";
  }
}

TEST(Planner, ParentStickinessReducesDelta) {
  Scenario s = MakeAvionicsScenario(6);

  PlannerConfig sticky = Config(1);
  sticky.parent_stickiness = true;
  PlannerConfig fickle = Config(1);
  fickle.parent_stickiness = false;
  // Make the load term dominate so the fickle planner has a reason to move
  // things around.
  fickle.weight_load = 5.0;
  sticky.weight_load = 5.0;

  Planner planner_a(&s.topology, &s.workload, sticky);
  Planner planner_b(&s.topology, &s.workload, fickle);

  auto root_a = planner_a.PlanForMode(FaultSet(), {});
  auto root_b = planner_b.PlanForMode(FaultSet(), {});
  ASSERT_TRUE(root_a.ok());
  ASSERT_TRUE(root_b.ok());

  size_t delta_sticky = 0;
  size_t delta_fickle = 0;
  for (uint32_t n = 4; n < s.topology.node_count(); ++n) {
    auto mode_a = planner_a.PlanForMode(FaultSet({NodeId(n)}), {&root_a.value()});
    auto mode_b = planner_b.PlanForMode(FaultSet({NodeId(n)}), {&root_b.value()});
    ASSERT_TRUE(mode_a.ok());
    ASSERT_TRUE(mode_b.ok());
    delta_sticky += ComputeDelta(*root_a, *mode_a, planner_a.graph()).tasks_moved;
    delta_fickle += ComputeDelta(*root_b, *mode_b, planner_b.graph()).tasks_moved;
  }
  EXPECT_LE(delta_sticky, delta_fickle);
}

TEST(Planner, TooManyFaultsRejected) {
  Scenario s = MakeScadaScenario();
  Planner planner(&s.topology, &s.workload, Config(1));
  auto plan = planner.PlanForMode(FaultSet({NodeId(0), NodeId(1)}), {});
  EXPECT_FALSE(plan.ok());
}

TEST(Planner, EdgeBudgetCoversActualFanout) {
  // The plan's edge budgets must be large enough that the runtime's actual
  // guardian queueing (all of a node's sends back-to-back) fits within them.
  Scenario s = MakeAvionicsScenario();
  Planner planner(&s.topology, &s.workload, Config(1));
  auto plan = planner.PlanForMode(FaultSet(), {});
  ASSERT_TRUE(plan.ok());
  const auto& edges = planner.graph().edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    if (plan->edge_budget()[i] < 0) {
      continue;
    }
    const NodeId from = plan->placement()[edges[i].from];
    const NodeId to = plan->placement()[edges[i].to];
    if (from == to) {
      EXPECT_EQ(plan->edge_budget()[i], 0);
    } else {
      EXPECT_GT(plan->edge_budget()[i], 0);
    }
  }
}

TEST(Planner, RandomScenariosPlanAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    RandomDagParams params;
    params.period = Milliseconds(40);
    Scenario s = MakeRandomScenario(&rng, params);
    Planner planner(&s.topology, &s.workload, Config(1));
    auto strategy = planner.BuildStrategy();
    ASSERT_TRUE(strategy.ok()) << "seed " << seed << ": " << strategy.status().ToString();
    for (const FaultSet& faults : strategy->PlannedSets()) {
      CheckPlanInvariants(planner, s, *strategy->Lookup(faults));
    }
  }
}

TEST(Planner, MetricsCountModes) {
  Scenario s = MakeScadaScenario(4);
  Planner planner(&s.topology, &s.workload, Config(1));
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok());
  EXPECT_EQ(planner.metrics().modes_planned, strategy->mode_count());
  EXPECT_GE(planner.metrics().schedule_attempts, strategy->mode_count());
}

}  // namespace
}  // namespace btr
