// Sweep-service tests: the fleet executor over the fingerprint-keyed
// strategy cache (src/spec/experiment_service.{h,cc}, strategy_cache.h).
//
// The load-bearing contract is the oracle: for fuzzed sweep specs, every
// per-job ExperimentReport — and the combined sweep fingerprint — must
// serialize byte-identical across {cache on, cache off} x {--jobs 1, 4}.
// The cache and the job lanes are speed knobs, never semantics knobs.
// This suite carries the "service" ctest label: it runs in tier-1, under
// ASan/UBSan (full suite), and under TSan with BTR_SHARD_EXEC=threads,
// where the directed oversubscription test drives sweep jobs x simulator
// shards against the shared pool's reserved-worker ticketing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/spec/experiment_service.h"
#include "src/spec/strategy_cache.h"

namespace btr {
namespace {

ExperimentSpec ParseOrDie(const std::string& text) {
  auto spec = ParseExperimentSpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

// A small avionics sweep: `seeds` seeds x the given f values.
ExperimentSpec MakeSweepSpec(size_t seeds, std::vector<uint64_t> f_values,
                             uint64_t periods = 12) {
  ExperimentSpec spec;
  spec.name = "svc";
  spec.scenario.kind = SpecScenario::Kind::kAvionics;
  spec.scenario.nodes = 6;
  spec.recovery_bound = Milliseconds(500);
  SweepAxis seed_axis;
  seed_axis.key = "seed";
  for (size_t i = 0; i < seeds; ++i) {
    seed_axis.values.push_back(i + 1);
  }
  spec.sweeps.push_back(seed_axis);
  SweepAxis f_axis;
  f_axis.key = "f";
  f_axis.values = std::move(f_values);
  spec.sweeps.push_back(f_axis);
  SpecPhase phase;
  phase.periods = periods;
  SpecFault fault;
  fault.critical_primary = true;
  fault.injection.manifest_at = Milliseconds(30);
  fault.injection.behavior = FaultBehavior::kCrash;
  phase.faults.push_back(fault);
  spec.phases.push_back(phase);
  return spec;
}

SweepServiceReport RunOrDie(const ExperimentSpec& spec, const ServiceOptions& options) {
  auto report = RunSweepService(spec, options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

// --- the oracle: cache and parallelism never change reports ----------------

// Fuzzed: random scenarios, axes, and fault scripts; every per-job report
// must serialize byte-identical across {cache on, off} x {jobs 1, 4}, and
// the combined fingerprint must be invariant too.
TEST(ServiceOracle, FuzzedCacheOnOffByteIdenticalAcrossJobCounts) {
  Rng rng(20260808);
  for (int trial = 0; trial < 5; ++trial) {
    ExperimentSpec spec;
    spec.name = "fuzz" + std::to_string(trial);
    const int kind = static_cast<int>(rng.NextBelow(3));
    spec.scenario.kind = kind == 0   ? SpecScenario::Kind::kAvionics
                         : kind == 1 ? SpecScenario::Kind::kScada
                                     : SpecScenario::Kind::kRandom;
    spec.scenario.nodes = 4 + rng.NextBelow(4);
    spec.scenario.scenario_seed = 1 + rng.NextBelow(5);
    spec.recovery_bound = Milliseconds(500);
    SweepAxis seeds;
    seeds.key = "seed";
    const size_t seed_count = 2 + rng.NextBelow(2);
    for (size_t i = 0; i < seed_count; ++i) {
      seeds.values.push_back(1 + rng.Next() % 1000);
    }
    spec.sweeps.push_back(seeds);
    if (rng.NextBelow(2) == 0) {
      SweepAxis f_axis;
      f_axis.key = "f";
      f_axis.values = {1, 2};
      spec.sweeps.push_back(f_axis);
    }
    SpecPhase phase;
    phase.periods = 8 + rng.NextBelow(8);
    if (rng.NextBelow(4) != 0) {
      SpecFault fault;
      fault.critical_primary = true;
      fault.injection.manifest_at = Milliseconds(10 + rng.NextBelow(30));
      fault.injection.behavior =
          rng.NextBelow(2) == 0 ? FaultBehavior::kCrash : FaultBehavior::kValueCorruption;
      phase.faults.push_back(fault);
    }
    spec.phases.push_back(phase);

    ServiceOptions baseline;
    baseline.jobs = 1;
    baseline.cache = false;
    baseline.keep_reports = true;
    const SweepServiceReport expected = RunOrDie(spec, baseline);

    for (const bool cache : {false, true}) {
      for (const size_t jobs : {size_t{1}, size_t{4}}) {
        if (!cache && jobs == 1) {
          continue;  // the baseline itself
        }
        ServiceOptions options;
        options.jobs = jobs;
        options.cache = cache;
        options.keep_reports = true;
        const SweepServiceReport got = RunOrDie(spec, options);
        SCOPED_TRACE("trial " + std::to_string(trial) + " cache=" +
                     std::to_string(cache) + " jobs=" + std::to_string(jobs));
        // Fuzzed configs may contain infeasible jobs; the oracle covers
        // those too — the same jobs fail the same way, and the reports of
        // the successful ones stay byte-identical.
        EXPECT_EQ(got.failures, expected.failures);
        EXPECT_EQ(got.combined_fingerprint, expected.combined_fingerprint);
        ASSERT_EQ(got.jobs.size(), expected.jobs.size());
        for (size_t i = 0; i < got.jobs.size(); ++i) {
          EXPECT_EQ(got.jobs[i].name, expected.jobs[i].name);
          ASSERT_EQ(got.jobs[i].status.ok(), expected.jobs[i].status.ok())
              << got.jobs[i].name;
          EXPECT_EQ(got.jobs[i].status.message(), expected.jobs[i].status.message());
          EXPECT_EQ(SerializeExperimentReport(got.jobs[i].report),
                    SerializeExperimentReport(expected.jobs[i].report))
              << got.jobs[i].name;
        }
      }
    }
  }
}

// Jobs=1 with a cold cache is the pre-service sequential sweep: the same
// jobs, reports, and combined fingerprint as looping RunExperiment over
// ExpandSweeps by hand.
TEST(ServiceOracle, Jobs1MatchesSequentialRunExperimentLoop) {
  const ExperimentSpec spec = MakeSweepSpec(3, {1, 2});
  auto expanded = ExpandSweeps(spec);
  ASSERT_TRUE(expanded.ok());
  std::vector<std::string> expected_reports;
  uint64_t expected_combined = 0;
  for (const ExperimentSpec& one : *expanded) {
    auto report = RunExperiment(one);
    ASSERT_TRUE(report.ok()) << one.name << ": " << report.status().ToString();
    expected_reports.push_back(SerializeExperimentReport(*report));
    expected_combined =
        expected_combined * 1099511628211ULL ^ FingerprintExperimentReport(*report);
  }

  ServiceOptions options;
  options.jobs = 1;
  options.keep_reports = true;
  const SweepServiceReport got = RunOrDie(spec, options);
  EXPECT_EQ(got.combined_fingerprint, expected_combined);
  ASSERT_EQ(got.jobs.size(), expected_reports.size());
  for (size_t i = 0; i < got.jobs.size(); ++i) {
    EXPECT_EQ(SerializeExperimentReport(got.jobs[i].report), expected_reports[i]);
    EXPECT_EQ(got.jobs[i].name, (*expanded)[i].name);
  }
}

// --- cache economics -------------------------------------------------------

// Seeds do not perturb the planner's inputs, so a seeds x f sweep compiles
// one strategy per f value and shares it: misses == |f axis|, everything
// else hits, and at --jobs 1 the first job of each f class is the miss.
TEST(Service, StrategyCacheMissesOncePerPlannerClass) {
  const ExperimentSpec spec = MakeSweepSpec(6, {1, 2});
  ServiceOptions options;
  options.jobs = 1;
  const SweepServiceReport report = RunOrDie(spec, options);
  ASSERT_EQ(report.jobs.size(), 12u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.strategy_cache.misses, 2u);
  EXPECT_EQ(report.strategy_cache.hits, 10u);
  EXPECT_GE(report.cache_hit_ratio(), 0.5);
  // Scenario text is identical across all 12 jobs: one build, 11 reuses.
  EXPECT_EQ(report.scenario_cache.misses, 1u);
  EXPECT_EQ(report.scenario_cache.hits, 11u);
  for (size_t i = 0; i < report.jobs.size(); ++i) {
    // Expansion order is seed-major (seed axis first), so jobs 0 and 1 are
    // seed=1 x f={1,2}: exactly those two compile.
    EXPECT_EQ(report.jobs[i].cache_hit, i >= 2) << i;
    EXPECT_NE(report.jobs[i].planner_fingerprint, 0u);
    EXPECT_NE(report.jobs[i].scenario_fingerprint, 0u);
  }
  // Jobs sharing an f share the compiled strategy, hence the mode count;
  // the two classes genuinely differ.
  EXPECT_EQ(report.jobs[0].modes, report.jobs[2].modes);
  EXPECT_EQ(report.jobs[1].modes, report.jobs[3].modes);
  EXPECT_NE(report.jobs[0].modes, report.jobs[1].modes);
}

TEST(Service, CacheDisabledHasNoCacheActivity) {
  const ExperimentSpec spec = MakeSweepSpec(2, {1});
  ServiceOptions options;
  options.jobs = 1;
  options.cache = false;
  const SweepServiceReport report = RunOrDie(spec, options);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.strategy_cache.hits, 0u);
  EXPECT_EQ(report.strategy_cache.misses, 0u);
  for (const SweepJobRecord& job : report.jobs) {
    EXPECT_FALSE(job.cache_hit);
  }
}

// A job whose plan is infeasible records its failure and keeps the fleet
// running; failed compiles are never cached (each infeasible job retries
// and fails on its own), and failed jobs stay out of the combined
// fingerprint.
TEST(Service, FailedJobsAreRecordedNotFatal) {
  // f=9 on 6 compute nodes sheds every mode: the plan compiles (and is
  // cached — the compile itself succeeded), but the phase script's
  // critical-primary fault has no compute primary to target, so each f=9
  // job fails at run time. Failures are recorded per job, never abort the
  // sweep, and never contribute to the combined fingerprint.
  const ExperimentSpec spec = MakeSweepSpec(2, {1, 9});
  ServiceOptions options;
  options.jobs = 1;
  const SweepServiceReport report = RunOrDie(spec, options);
  ASSERT_EQ(report.jobs.size(), 4u);
  EXPECT_EQ(report.failures, 2u);
  EXPECT_TRUE(report.jobs[0].status.ok());
  EXPECT_FALSE(report.jobs[1].status.ok());
  EXPECT_TRUE(report.jobs[2].status.ok());
  EXPECT_FALSE(report.jobs[3].status.ok());
  // Both strategy classes compiled once and were reused once each — a
  // run-stage failure does not evict the (valid) compiled strategy.
  EXPECT_EQ(report.strategy_cache.misses, 2u);
  EXPECT_EQ(report.strategy_cache.hits, 2u);

  const ExperimentSpec ok_only = MakeSweepSpec(2, {1});
  const SweepServiceReport ok_report = RunOrDie(ok_only, options);
  EXPECT_EQ(report.combined_fingerprint, ok_report.combined_fingerprint);
}

// --- the single-flight cache itself ----------------------------------------

// Failed computes are never cached: the leader gets the Status verbatim,
// the entry is gone, and the next caller of the same key compiles fresh.
TEST(SingleFlight, FailedComputesLeaveNoEntryBehind) {
  SingleFlightCache<int, int> cache;
  int calls = 0;
  const auto fail = [&]() -> StatusOr<std::shared_ptr<const int>> {
    ++calls;
    return Status::Internal("compile exploded");
  };
  bool hit = true;
  auto r1 = cache.GetOrCompute(7, fail, &hit);
  EXPECT_FALSE(r1.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 0u);

  // Same key again: recomputed (no poisoned entry), and a success now
  // sticks.
  auto r2 = cache.GetOrCompute(
      7, [&]() -> StatusOr<std::shared_ptr<const int>> {
        ++calls;
        return std::make_shared<const int>(42);
      });
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(**r2, 42);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.size(), 1u);

  // And a third call is a pure hit: compute not invoked.
  auto r3 = cache.GetOrCompute(
      7,
      [&]() -> StatusOr<std::shared_ptr<const int>> {
        ++calls;
        return Status::Internal("should not run");
      },
      &hit);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// Single-flight under contention: a failing leader hands the key to a
// blocked waiter, which takes over as the next leader; a succeeding leader
// is shared by everyone who waited. Exactly one success-compute ever runs.
TEST(SingleFlight, WaitersTakeOverAfterLeaderFailure) {
  SingleFlightCache<int, int> cache;
  std::atomic<int> fail_budget{1};
  std::atomic<int> success_compiles{0};
  const auto compute = [&]() -> StatusOr<std::shared_ptr<const int>> {
    std::this_thread::yield();  // widen the in-flight window for waiters
    if (fail_budget.fetch_sub(1) > 0) {
      return Status::Internal("first leader fails");
    }
    success_compiles.fetch_add(1);
    return std::make_shared<const int>(99);
  };
  constexpr int kCallers = 8;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&] {
      auto r = cache.GetOrCompute(5, compute);
      if (r.ok()) {
        EXPECT_EQ(**r, 99);
        ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  // The one failing leader reported its Status; everyone else (waiters and
  // late callers) shares the single successful compile.
  EXPECT_EQ(success_compiles.load(), 1);
  EXPECT_EQ(ok_count.load(), kCallers - 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, static_cast<uint64_t>(kCallers - 2));
}

// --- nested pool use: sweep jobs x sharded simulation ----------------------

// Oversubscription: more job lanes than the pool had workers, each job a
// multi-shard simulation, with BTR_SHARD_EXEC=threads forcing the
// threaded shard path wherever it is legal (on a pool worker the
// simulator falls back to sequential windows — same reports by the
// shard-invariance contract). Must complete and match the sequential run.
TEST(Service, OversubscribedJobsTimesShardsCompletes) {
  ExperimentSpec spec = MakeSweepSpec(6, {1}, /*periods=*/10);
  spec.shards = 4;

  ServiceOptions sequential;
  sequential.jobs = 1;
  const SweepServiceReport expected = RunOrDie(spec, sequential);
  ASSERT_EQ(expected.failures, 0u);

  setenv("BTR_SHARD_EXEC", "threads", /*overwrite=*/1);
  ServiceOptions oversubscribed;
  oversubscribed.jobs = ThreadPool::Shared().worker_count() + 2;
  const SweepServiceReport got = RunOrDie(spec, oversubscribed);
  unsetenv("BTR_SHARD_EXEC");

  EXPECT_EQ(got.failures, 0u);
  EXPECT_EQ(got.combined_fingerprint, expected.combined_fingerprint);
}

// A sweep service invoked from inside a pool job (a sweep in a sweep) must
// run inline rather than deadlock waiting for lanes.
TEST(Service, NestedServiceInvocationRunsInline) {
  const ExperimentSpec spec = MakeSweepSpec(2, {1}, /*periods=*/8);
  ServiceOptions inner;
  inner.jobs = 4;
  uint64_t inner_fp = 0;
  ThreadPool::Shared().ParallelFor(1, [&](size_t) {
    inner_fp = RunOrDie(spec, inner).combined_fingerprint;
  });
  ServiceOptions outer;
  outer.jobs = 1;
  EXPECT_EQ(inner_fp, RunOrDie(spec, outer).combined_fingerprint);
}

// --- ExpandSweeps hardening ------------------------------------------------

TEST(ExpandSweepsHardening, DuplicateAxisKeyRejected) {
  ExperimentSpec spec = MakeSweepSpec(2, {1});
  SweepAxis dup;
  dup.key = "seed";
  dup.values = {9};
  spec.sweeps.push_back(dup);
  const auto expanded = ExpandSweeps(spec);
  ASSERT_FALSE(expanded.ok());
  EXPECT_NE(expanded.status().message().find("duplicate sweep axis 'seed'"),
            std::string::npos);
}

TEST(ExpandSweepsHardening, EmptyAxisRejected) {
  ExperimentSpec spec = MakeSweepSpec(2, {1});
  SweepAxis empty;
  empty.key = "nodes";
  spec.sweeps.push_back(empty);
  const auto expanded = ExpandSweeps(spec);
  ASSERT_FALSE(expanded.ok());
  EXPECT_NE(expanded.status().message().find("has no values"), std::string::npos);
}

TEST(ExpandSweepsHardening, UnknownAxisKeyRejected) {
  ExperimentSpec spec = MakeSweepSpec(2, {1});
  SweepAxis bogus;
  bogus.key = "periods";
  bogus.values = {10};
  spec.sweeps.push_back(bogus);
  const auto expanded = ExpandSweeps(spec);
  ASSERT_FALSE(expanded.ok());
  EXPECT_NE(expanded.status().message().find("unknown sweep key 'periods'"),
            std::string::npos);
}

TEST(ExpandSweepsHardening, CartesianBlowupRejectedBeforeAllocation) {
  ExperimentSpec spec = MakeSweepSpec(2, {1});
  spec.sweeps.clear();
  SweepAxis big;
  big.key = "seed";
  for (uint64_t v = 1; v <= kMaxSweepExpansions + 1; ++v) {
    big.values.push_back(v);
  }
  spec.sweeps.push_back(big);
  const auto expanded = ExpandSweeps(spec);
  ASSERT_FALSE(expanded.ok());
  EXPECT_NE(expanded.status().message().find("more than 100000"), std::string::npos);
}

// A blowup that arrives through the parser (per-axis limits are parser-
// checked, the cartesian product is not) must cite the offending SWEEP
// record's line.
TEST(ExpandSweepsHardening, ParsedBlowupCitesSpecLine) {
  std::string text =
      "BTRX 1\n"
      "NAME blowup\n"
      "SCENARIO avionics nodes=6\n"
      "CONFIG f=1 recovery-us=500000 seed=1\n";
  std::string seeds = "SWEEP seed";
  for (int i = 1; i <= 500; ++i) {
    seeds += " " + std::to_string(i);
  }
  std::string recovery = "SWEEP recovery-us";
  for (int i = 1; i <= 500; ++i) {
    recovery += " " + std::to_string(100000 + i);
  }
  text += seeds + "\n" + recovery + "\n";  // 500 x 500 = 250000 > 100000
  text += "PHASE periods=10\nEND\n";
  const ExperimentSpec spec = ParseOrDie(text);
  const auto expanded = ExpandSweeps(spec);
  ASSERT_FALSE(expanded.ok());
  // The product first exceeds the cap at the second axis, on line 6.
  EXPECT_EQ(expanded.status().message().find("line 6: "), 0u)
      << expanded.status().message();
}

// --- results.btrr: the append-only results store ---------------------------

TEST(ResultsStore, SerializeParseRoundTrip) {
  const ExperimentSpec spec = MakeSweepSpec(3, {1, 2});
  ServiceOptions options;
  options.jobs = 1;
  const SweepServiceReport report = RunOrDie(spec, options);

  const std::string text = SerializeSweepResults(report, options);
  const auto parsed = ParseResultsStore(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  const SweepResultsRecord& rec = (*parsed)[0];
  EXPECT_EQ(rec.spec_name, "svc");
  EXPECT_EQ(rec.lanes, report.lanes);
  EXPECT_TRUE(rec.cache);
  EXPECT_EQ(rec.runs, report.jobs.size());
  EXPECT_EQ(rec.failures, 0u);
  EXPECT_EQ(rec.combined_fingerprint, report.combined_fingerprint);
  EXPECT_EQ(rec.strategy_hits, report.strategy_cache.hits);
  EXPECT_EQ(rec.strategy_misses, report.strategy_cache.misses);
  ASSERT_EQ(rec.jobs.size(), report.jobs.size());
  for (size_t i = 0; i < rec.jobs.size(); ++i) {
    EXPECT_EQ(rec.jobs[i].name, report.jobs[i].name);
    EXPECT_TRUE(rec.jobs[i].ok);
    EXPECT_EQ(rec.jobs[i].fingerprint, report.jobs[i].fingerprint);
    EXPECT_EQ(rec.jobs[i].planner_fingerprint, report.jobs[i].planner_fingerprint);
    EXPECT_EQ(rec.jobs[i].scenario_fingerprint, report.jobs[i].scenario_fingerprint);
    EXPECT_EQ(rec.jobs[i].max_faults, report.jobs[i].max_faults);
    EXPECT_EQ(rec.jobs[i].cache_hit, report.jobs[i].cache_hit);
    EXPECT_EQ(rec.jobs[i].plan_us, report.jobs[i].plan_us);
    EXPECT_EQ(rec.jobs[i].run_us, report.jobs[i].run_us);
  }
}

// Appends accumulate: two sweeps into the same store leave two parseable
// blocks, oldest first, nothing rewritten.
TEST(ResultsStore, AppendsAccumulateAcrossSweeps) {
  const std::string path = ::testing::TempDir() + "/service_results.btrr";
  std::remove(path.c_str());
  const ExperimentSpec spec = MakeSweepSpec(2, {1});

  ServiceOptions first;
  first.jobs = 1;
  first.results_path = path;
  const SweepServiceReport a = RunOrDie(spec, first);

  ServiceOptions second = first;
  second.cache = false;
  const SweepServiceReport b = RunOrDie(spec, second);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto parsed = ParseResultsStore(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_TRUE((*parsed)[0].cache);
  EXPECT_FALSE((*parsed)[1].cache);
  EXPECT_EQ((*parsed)[0].combined_fingerprint, a.combined_fingerprint);
  EXPECT_EQ((*parsed)[1].combined_fingerprint, b.combined_fingerprint);
  EXPECT_EQ((*parsed)[0].jobs.size(), 2u);
  EXPECT_EQ((*parsed)[1].jobs[0].cache_hit, false);
  std::remove(path.c_str());
}

// Corruption sweep: every line-level mutation of a valid store must be
// rejected with a line-numbered error, never crash or misparse.
TEST(ResultsStore, CorruptionIsRejectedWithLineNumbers) {
  const ExperimentSpec spec = MakeSweepSpec(2, {1});
  ServiceOptions options;
  options.jobs = 1;
  const std::string good = SerializeSweepResults(RunOrDie(spec, options), options);
  ASSERT_TRUE(ParseResultsStore(good).ok());

  const std::string mutations[] = {
      good.substr(0, good.size() - 1),               // drop final newline
      good.substr(0, good.rfind("END\n")),           // unclosed block
      "BTRR 2\n",                                    // bad version
      "BTRR 1\nSWEEP\n",                             // truncated SWEEP
      good + "JOB stray ok=1\n",                     // trailing garbage
  };
  for (const std::string& bad : mutations) {
    const auto parsed = ParseResultsStore(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().message().find("line "), 0u)
          << parsed.status().message();
    }
  }

  // Field-level damage: corrupt each JOB field in turn.
  const size_t job_at = good.find("\nJOB ") + 1;
  const size_t job_end = good.find('\n', job_at);
  std::string line = good.substr(job_at, job_end - job_at);
  const std::string damaged[] = {
      "JOB",                 // no fields
      line + " extra=1",     // extra field
      line.substr(0, line.rfind(' ')),  // missing field
  };
  for (const std::string& bad_line : damaged) {
    std::string text = good.substr(0, job_at) + bad_line + good.substr(job_end);
    EXPECT_FALSE(ParseResultsStore(text).ok()) << bad_line;
  }
}

// A declared-vs-actual JOB count mismatch is corruption, not a shrug.
TEST(ResultsStore, RunCountMismatchRejected) {
  const ExperimentSpec spec = MakeSweepSpec(2, {1});
  ServiceOptions options;
  options.jobs = 1;
  std::string text = SerializeSweepResults(RunOrDie(spec, options), options);
  const size_t job_at = text.find("\nJOB ") + 1;
  const size_t job_end = text.find('\n', job_at) + 1;
  text = text.substr(0, job_at) + text.substr(job_end);  // delete one JOB row
  const auto parsed = ParseResultsStore(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("JOB records"), std::string::npos);
}

// --- strategy sharing safety ----------------------------------------------

// AdoptStrategy refuses a strategy whose provenance does not match the
// adopting system — the guard that makes cross-job sharing safe.
TEST(Service, AdoptStrategyValidatesProvenance) {
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(500);
  BtrSystem donor(MakeAvionicsScenario(6), config);
  ASSERT_TRUE(donor.Plan().ok());

  // Same scenario, same config: adoption is indistinguishable from Plan().
  BtrSystem twin(MakeAvionicsScenario(6), config);
  EXPECT_TRUE(twin.AdoptStrategy(donor.shared_strategy()).ok());
  EXPECT_TRUE(twin.planned());

  // Different f: refused.
  BtrConfig config2 = config;
  config2.planner.max_faults = 2;
  BtrSystem other_f(MakeAvionicsScenario(6), config2);
  EXPECT_FALSE(other_f.AdoptStrategy(donor.shared_strategy()).ok());

  // Different scenario: refused.
  BtrSystem other_scenario(MakeAvionicsScenario(8), config);
  EXPECT_FALSE(other_scenario.AdoptStrategy(donor.shared_strategy()).ok());

  // An unplanned (empty) strategy: refused.
  BtrSystem unplanned(MakeAvionicsScenario(6), config);
  BtrSystem target(MakeAvionicsScenario(6), config);
  EXPECT_FALSE(target.AdoptStrategy(unplanned.shared_strategy()).ok());
}

}  // namespace
}  // namespace btr
