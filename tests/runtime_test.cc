// Runtime behavior tests: every adversary behavior against the full system,
// detection kinds, convergence, degradation, and the kR bound.

#include <gtest/gtest.h>

#include "src/core/btr_system.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

BtrConfig DefaultConfig(uint32_t f = 1) {
  BtrConfig config;
  config.planner.max_faults = f;
  config.planner.recovery_bound = Milliseconds(500);
  config.seed = 7;
  return config;
}

NodeId PrimaryHostOf(const BtrSystem& system, const std::string& task_name) {
  const TaskId task = system.scenario().workload.FindTask(task_name);
  const Plan* root = system.strategy().Lookup(FaultSet());
  return root->placement()[system.planner().graph().PrimaryOf(task)];
}

NodeId ReplicaHostOf(const BtrSystem& system, const std::string& task_name, uint32_t replica) {
  const TaskId task = system.scenario().workload.FindTask(task_name);
  const Plan* root = system.strategy().Lookup(FaultSet());
  return root->placement()[system.planner().graph().ReplicasOf(task)[replica]];
}

NodeId CheckerHostOf(const BtrSystem& system, const std::string& task_name) {
  const TaskId task = system.scenario().workload.FindTask(task_name);
  const Plan* root = system.strategy().Lookup(FaultSet());
  return root->placement()[system.planner().graph().CheckerOf(task)];
}

TEST(Runtime, OmissionFaultIsDetectedViaPathBlame) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "control_law");
  system.AddFault({victim, Milliseconds(100), FaultBehavior::kOmission, 0, NodeId::Invalid(), 0});
  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_GT(report->total_node_stats.path_declarations, 0u);
  EXPECT_FALSE(report->correctness.btr_violated)
      << "recovery " << ToMillisF(report->correctness.max_recovery) << " ms";
}

TEST(Runtime, EquivocationIsDetectedAndProven) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "att_fusion");
  system.AddFault(
      {victim, Milliseconds(100), FaultBehavior::kEquivocate, 0, NodeId::Invalid(), 0});
  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_FALSE(report->correctness.btr_violated);
}

TEST(Runtime, DelayFaultIsDetected) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "att_fusion");
  // Delay outputs by 6 ms: far outside any window, inside the period.
  system.AddFault(
      {victim, Milliseconds(100), FaultBehavior::kDelay, Milliseconds(6), NodeId::Invalid(), 0});
  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
}

TEST(Runtime, CrashOfReplicaHostKeepsOutputsFlowing) {
  // Losing a NON-primary replica host must not disturb sink outputs at all:
  // consumers read the primary, and the checker tolerates a missing record
  // by declaring paths (which convicts the crashed node via heartbeats too).
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = ReplicaHostOf(system, "control_law", 1);
  const NodeId primary = PrimaryHostOf(system, "control_law");
  ASSERT_NE(victim, primary);
  system.AddFault({victim, Milliseconds(100), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  // Value/late errors must not appear; at most a brief transition blip of
  // missing outputs is allowed within R.
  EXPECT_EQ(report->correctness.incorrect_value, 0u);
  EXPECT_FALSE(report->correctness.btr_violated);
}

TEST(Runtime, CrashOfCheckerHostIsDetectedByHeartbeats) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = CheckerHostOf(system, "control_law");
  system.AddFault({victim, Milliseconds(100), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_FALSE(report->correctness.btr_violated);
}

TEST(Runtime, SelectiveOmissionEventuallyAccumulatesBlame) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "att_fusion");
  const NodeId target = CheckerHostOf(system, "att_fusion");
  system.AddFault(
      {victim, Milliseconds(100), FaultBehavior::kSelectiveOmission, 0, target, 0});
  auto report = system.Run(200);
  ASSERT_TRUE(report.ok());
  // Starving a single target yields one problematic path: not enough for
  // conviction on its own (the paper's omission-attribution limit), but the
  // checker also misses the record, so no wrong VALUES may appear.
  EXPECT_EQ(report->correctness.incorrect_value, 0u);
  EXPECT_GT(report->total_node_stats.path_declarations, 0u);
}

TEST(Runtime, OmissionBlameDoesNotCascadeDownstream) {
  // A silent producer starves the whole chain behind it. Gap notices must
  // keep the blame on the silent node: every honest node switches mode
  // exactly once (for the real fault) and no innocent node is convicted.
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "att_fusion");
  system.AddFault({victim, Milliseconds(100), FaultBehavior::kOmission, 0, NodeId::Invalid(), 0});
  auto report = system.Run(200);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  const uint64_t honest = system.scenario().topology.node_count() - 1;
  EXPECT_EQ(report->total_node_stats.mode_switches, honest)
      << "more switches than honest nodes => someone innocent was convicted";
  EXPECT_FALSE(report->correctness.btr_violated);
}

TEST(Runtime, HonestNodesConvergeToTheSamePlan) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "control_law");
  system.AddFault(
      {victim, Milliseconds(100), FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
  auto report = system.Run(200);
  ASSERT_TRUE(report.ok());
  // Every honest node eventually convicted the victim (full distribution).
  EXPECT_NE(report->faults[0].last_conviction, kSimTimeNever);
  EXPECT_GE(report->faults[0].distribution_latency, 0);
}

TEST(Runtime, DetectionLatencyIsBoundedByAFewPeriods) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "control_law");
  system.AddFault(
      {victim, Milliseconds(100), FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
  auto report = system.Run(200);
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->faults[0].detection_latency, 0);
  // Commission faults are caught by the next checker activation: within two
  // periods (20 ms) plus evidence latency.
  EXPECT_LE(report->faults[0].detection_latency, Milliseconds(30));
}

TEST(Runtime, TwoSequentialFaultsWithF2StayBounded) {
  BtrConfig config = DefaultConfig(2);
  BtrSystem system(MakeAvionicsScenario(8), config);
  ASSERT_TRUE(system.Plan().ok());
  const NodeId first = PrimaryHostOf(system, "control_law");
  const NodeId second = PrimaryHostOf(system, "att_fusion");
  ASSERT_NE(first, second);
  system.AddFault(
      {first, Milliseconds(100), FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
  system.AddFault({second, Milliseconds(800), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  auto report = system.Run(300);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->faults.size(), 2u);
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_NE(report->faults[1].first_conviction, kSimTimeNever);
  EXPECT_FALSE(report->correctness.btr_violated);
  // Cumulative bad time obeys the k*R bound.
  EXPECT_LE(report->correctness.total_bad_time, 2 * config.planner.recovery_bound);
}

TEST(Runtime, EvidenceFloodWithCountermeasureConvictsFlooder) {
  BtrConfig config = DefaultConfig();
  config.runtime.endorsement_abuse = true;
  BtrSystem system(MakeAvionicsScenario(), config);
  ASSERT_TRUE(system.Plan().ok());
  // Flood from a compute node.
  const NodeId flooder = PrimaryHostOf(system, "control_law");
  system.AddFault(
      {flooder, Milliseconds(100), FaultBehavior::kEvidenceFlood, 0, NodeId::Invalid(), 16});
  auto report = system.Run(200);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever)
      << "endorsement abuse should convict the flooder";
  EXPECT_GT(report->total_node_stats.evidence_rejected, 0u);
}

TEST(Runtime, EvidenceFloodWithoutCountermeasureIsNotConvicted) {
  BtrConfig config = DefaultConfig();
  config.runtime.endorsement_abuse = false;
  BtrSystem system(MakeAvionicsScenario(), config);
  ASSERT_TRUE(system.Plan().ok());
  const NodeId flooder = PrimaryHostOf(system, "control_law");
  system.AddFault(
      {flooder, Milliseconds(100), FaultBehavior::kEvidenceFlood, 0, NodeId::Invalid(), 16});
  auto report = system.Run(200);
  ASSERT_TRUE(report.ok());
  // The naive distributor keeps validating garbage forever.
  EXPECT_EQ(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_GT(report->total_node_stats.evidence_rejected, 0u);
}

TEST(Runtime, ModeSwitchesHappenOnConviction) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "control_law");
  system.AddFault({victim, Milliseconds(100), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  // Every honest node that convicted should have switched mode once.
  EXPECT_GT(report->total_node_stats.mode_switches, 0u);
}

TEST(Runtime, NoFalseConvictionsWithoutFaults) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    BtrConfig config = DefaultConfig();
    config.seed = seed;
    BtrSystem system(MakeAvionicsScenario(), config);
    ASSERT_TRUE(system.Plan().ok());
    auto report = system.Run(100);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->total_node_stats.mode_switches, 0u) << "seed " << seed;
    EXPECT_EQ(report->total_node_stats.evidence_generated, 0u) << "seed " << seed;
    EXPECT_EQ(report->correctness.correct_instances, report->correctness.total_instances);
  }
}

TEST(Runtime, ScadaScenarioRecoversFromValveControllerFault) {
  BtrConfig config = DefaultConfig();
  config.planner.recovery_bound = Milliseconds(2000);
  BtrSystem system(MakeScadaScenario(), config);
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "relief_logic");
  system.AddFault(
      {victim, Milliseconds(500), FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
  auto report = system.Run(100);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_FALSE(report->correctness.btr_violated);
}

TEST(Runtime, ConvoyScenarioSurvivesVehicleCrash) {
  BtrConfig config = DefaultConfig();
  config.planner.recovery_bound = Milliseconds(1000);
  BtrSystem system(MakeConvoyScenario(4), config);
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "acc_ctl2");
  system.AddFault({victim, Milliseconds(200), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_FALSE(report->correctness.btr_violated)
      << "recovery " << ToMillisF(report->correctness.max_recovery) << " ms";
}

TEST(Runtime, DegradedModeStillServesCriticalFlowsUnderScarcity) {
  // Only two flight computers: a fault forces degradation, and what remains
  // served must include the safety-critical flows whenever possible.
  BtrConfig config = DefaultConfig();
  BtrSystem system(MakeAvionicsScenario(2), config);
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "control_law");
  system.AddFault({victim, Milliseconds(100), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->correctness.btr_violated);
  // The elevator flow must be served in the new mode (victim is a flight
  // computer, not a sensor node).
  const Plan* degraded = system.strategy().Lookup(FaultSet({victim}));
  ASSERT_NE(degraded, nullptr);
  EXPECT_TRUE(degraded->ServesSink(system.scenario().workload.FindTask("elevator")));
}

TEST(Runtime, StateTransferHappensForStatefulMigration) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "control_law");
  system.AddFault({victim, Milliseconds(100), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  // Control traffic (state transfer) flowed during the transition, unless
  // every migrated task landed where a sibling replica already lived.
  const Plan* root = system.strategy().Lookup(FaultSet());
  const Plan* next = system.strategy().Lookup(FaultSet({victim}));
  ASSERT_NE(next, nullptr);
  const PlanDelta delta = ComputeDelta(*root, *next, system.planner().graph());
  if (delta.state_bytes_moved > 0) {
    EXPECT_GT(report->network.bytes_by_class[static_cast<int>(TrafficClass::kControl)], 0u);
  }
}

TEST(Runtime, ReportAccountsCpuAndNetwork) {
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  auto report = system.Run(50);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->total_node_stats.busy, 0);
  EXPECT_GT(report->total_node_stats.crypto, 0);
  EXPECT_GT(report->network.bytes_by_class[static_cast<int>(TrafficClass::kForeground)], 0u);
  EXPECT_EQ(report->periods, 50u);
  EXPECT_GT(report->events_executed, 0u);
  EXPECT_EQ(report->per_node.size(), system.scenario().topology.node_count());
}

TEST(Runtime, RunIsDeterministicForSameSeed) {
  auto run_once = [](uint64_t seed) {
    BtrConfig config = DefaultConfig();
    config.seed = seed;
    BtrSystem system(MakeAvionicsScenario(), config);
    EXPECT_TRUE(system.Plan().ok());
    const NodeId victim = PrimaryHostOf(system, "control_law");
    system.AddFault(
        {victim, Milliseconds(100), FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
    auto report = system.Run(100);
    EXPECT_TRUE(report.ok());
    return std::make_tuple(report->faults[0].first_conviction,
                           report->correctness.correct_instances,
                           report->events_executed);
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(std::get<2>(run_once(5)), 0u);
}

TEST(Runtime, ClockSkewWithinEpsilonCausesNoFalseAccusations) {
  // Nodes read arrivals through skewed clocks; as long as the skew bound is
  // below epsilon, a fault-free run must stay evidence-free.
  BtrConfig config = DefaultConfig();
  config.runtime.max_clock_offset = Microseconds(60);
  config.runtime.epsilon = Microseconds(100);
  BtrSystem system(MakeAvionicsScenario(), config);
  ASSERT_TRUE(system.Plan().ok());
  auto report = system.Run(100);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_node_stats.evidence_generated, 0u);
  EXPECT_EQ(report->total_node_stats.mode_switches, 0u);
}

TEST(Runtime, SkewBeyondEpsilonStillCatchesRealDelayFault) {
  BtrConfig config = DefaultConfig();
  config.runtime.max_clock_offset = Microseconds(60);
  BtrSystem system(MakeAvionicsScenario(), config);
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "att_fusion");
  system.AddFault(
      {victim, Milliseconds(100), FaultBehavior::kDelay, Milliseconds(6), NodeId::Invalid(), 0});
  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_FALSE(report->correctness.btr_violated);
}

TEST(Runtime, RunWithoutPlanFails) {
  BtrSystem system(MakeScadaScenario(), DefaultConfig());
  auto report = system.Run(10);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Runtime, InvalidFaultNodeRejected) {
  BtrSystem system(MakeScadaScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  system.AddFault({NodeId(999), 0, FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  auto report = system.Run(10);
  EXPECT_FALSE(report.ok());
}

TEST(Adversary, LatestManifestedInjectionWinsOnOneNode) {
  // Escalation scripts stack injections on one node; the one that
  // manifested most recently governs behavior (regression guard for the
  // inlined ActiveOn fast path).
  AdversarySpec spec;
  FaultInjection first;
  first.node = NodeId(3);
  first.manifest_at = Milliseconds(100);
  first.behavior = FaultBehavior::kOmission;
  spec.Add(first);
  FaultInjection second;
  second.node = NodeId(3);
  second.manifest_at = Milliseconds(500);
  second.behavior = FaultBehavior::kValueCorruption;
  spec.Add(second);

  EXPECT_EQ(spec.ActiveOn(NodeId(3), Milliseconds(50)), nullptr);
  ASSERT_NE(spec.ActiveOn(NodeId(3), Milliseconds(200)), nullptr);
  EXPECT_EQ(spec.ActiveOn(NodeId(3), Milliseconds(200))->behavior, FaultBehavior::kOmission);
  ASSERT_NE(spec.ActiveOn(NodeId(3), Milliseconds(900)), nullptr);
  EXPECT_EQ(spec.ActiveOn(NodeId(3), Milliseconds(900))->behavior,
            FaultBehavior::kValueCorruption);
  EXPECT_EQ(spec.ActiveOn(NodeId(4), Milliseconds(900)), nullptr);
}

}  // namespace
}  // namespace btr
