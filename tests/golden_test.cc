// Unit tests for the deterministic task semantics and the golden oracle.

#include <gtest/gtest.h>

#include "src/core/golden.h"

namespace btr {
namespace {

Dataflow Chain() {
  Dataflow w(Milliseconds(10));
  const TaskId src = w.AddSource("src", 10, NodeId(0), Criticality::kHigh);
  const TaskId a = w.AddCompute("a", 10, 0, Criticality::kHigh);
  const TaskId b = w.AddCompute("b", 10, 0, Criticality::kHigh);
  const TaskId sink = w.AddSink("sink", 10, NodeId(1), Criticality::kHigh, Milliseconds(5));
  w.Connect(src, a, 8);
  w.Connect(src, b, 8);
  w.Connect(a, sink, 8);
  w.Connect(b, sink, 8);
  return w;
}

TEST(Golden, SourceValuesVaryByTaskAndPeriod) {
  EXPECT_NE(SourceValue(TaskId(0), 1), SourceValue(TaskId(0), 2));
  EXPECT_NE(SourceValue(TaskId(0), 1), SourceValue(TaskId(1), 1));
  EXPECT_EQ(SourceValue(TaskId(3), 9), SourceValue(TaskId(3), 9));
}

TEST(Golden, ComputeOutputDependsOnInputs) {
  std::vector<InputValue> in1{{TaskId(0), 111}};
  std::vector<InputValue> in2{{TaskId(0), 112}};
  EXPECT_NE(ComputeOutput(TaskId(5), 3, in1), ComputeOutput(TaskId(5), 3, in2));
  EXPECT_EQ(ComputeOutput(TaskId(5), 3, in1), ComputeOutput(TaskId(5), 3, in1));
}

TEST(Golden, ComputeOutputDependsOnPeriodAndTask) {
  std::vector<InputValue> in{{TaskId(0), 111}};
  EXPECT_NE(ComputeOutput(TaskId(5), 3, in), ComputeOutput(TaskId(5), 4, in));
  EXPECT_NE(ComputeOutput(TaskId(5), 3, in), ComputeOutput(TaskId(6), 3, in));
}

TEST(Golden, OracleMatchesManualComposition) {
  Dataflow w = Chain();
  GoldenOracle oracle(&w);
  const TaskId src = w.FindTask("src");
  const TaskId a = w.FindTask("a");
  const TaskId b = w.FindTask("b");
  const TaskId sink = w.FindTask("sink");

  const uint64_t src_v = SourceValue(src, 7);
  EXPECT_EQ(oracle.Golden(src, 7), src_v);

  const uint64_t a_v = ComputeOutput(a, 7, {{src, src_v}});
  EXPECT_EQ(oracle.Golden(a, 7), a_v);

  std::vector<InputValue> sink_in{{a, a_v}, {b, ComputeOutput(b, 7, {{src, src_v}})}};
  EXPECT_EQ(oracle.Golden(sink, 7), ComputeOutput(sink, 7, sink_in));
}

TEST(Golden, OracleIsMemoizedAndStable) {
  Dataflow w = Chain();
  GoldenOracle oracle(&w);
  const TaskId sink = w.FindTask("sink");
  const uint64_t first = oracle.Golden(sink, 100);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(oracle.Golden(sink, 100), first);
  }
}

TEST(Golden, CorruptionPropagatesDeterministically) {
  // If the source lies, downstream honest computation yields a different
  // but deterministic digest — two honest replicas still agree.
  Dataflow w = Chain();
  const TaskId src = w.FindTask("src");
  const TaskId a = w.FindTask("a");
  const uint64_t honest = SourceValue(src, 3);
  const uint64_t corrupt = honest ^ 0xFF;
  const uint64_t replica1 = ComputeOutput(a, 3, {{src, corrupt}});
  const uint64_t replica2 = ComputeOutput(a, 3, {{src, corrupt}});
  EXPECT_EQ(replica1, replica2);
  EXPECT_NE(replica1, ComputeOutput(a, 3, {{src, honest}}));
}

}  // namespace
}  // namespace btr
