// Gossip install-plane dissemination (src/net/dissemination.h + the
// NodeRuntime wiring in src/core/runtime.cc).
//
// Three layers of coverage:
//   1. TrickleTimer / chunk-planning protocol units (no simulator).
//   2. The headline scenario: the convoy staged-edit rollout with
//      heartbeats *enabled* — unicast self-convicts the distributor into
//      missing sinks and a Definition 3.1 violation, gossip stays clean,
//      completes on every node, and puts fewer control-class bytes on the
//      bus than the unicast baseline.
//   3. Contracts: gossip does not perturb rollout-free runs (byte-identical
//      reports), shard count stays a pure speed knob under gossip, and the
//      distributor election admits a healed transient (the bugfix: a node
//      whose injection ended before rollout_at used to be banned forever).

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/btr_system.h"
#include "src/net/dissemination.h"
#include "src/net/network.h"
#include "src/spec/experiment_runner.h"
#include "src/spec/experiment_spec.h"

namespace btr {
namespace {

DissemConfig SmallConfig() {
  DissemConfig config;
  config.beacon_period = 1000;
  config.suppression_k = 1;
  config.max_doublings = 2;  // max interval 4000
  return config;
}

// --- TrickleTimer ------------------------------------------------------------

TEST(TrickleTimer, FiresInsideSecondHalfOfEachInterval) {
  TrickleTimer timer(SmallConfig(), /*node=*/3, /*key=*/0xfeed);
  timer.Start(0);
  ASSERT_TRUE(timer.running());
  EXPECT_GE(timer.fire_at(), 500);
  EXPECT_LT(timer.fire_at(), 1000);
  EXPECT_EQ(timer.end_at(), 1000);
}

TEST(TrickleTimer, IntervalDoublesUpToMaxWhileConsistent) {
  TrickleTimer timer(SmallConfig(), 3, 0xfeed);
  timer.Start(0);
  // Keep one consistent announcement per interval: activity stays false but
  // dormancy needs *quiescent* max-length intervals, so give it traffic by
  // resetting the quiet count through NoteActivity.
  std::vector<SimDuration> lengths;
  SimTime now = 0;
  for (int i = 0; i < 4; ++i) {
    timer.NoteActivity();
    now = timer.end_at();
    ASSERT_TRUE(timer.OnIntervalEnd(now));
    lengths.push_back(timer.end_at() - now);
  }
  EXPECT_EQ(lengths, (std::vector<SimDuration>{2000, 4000, 4000, 4000}));
}

TEST(TrickleTimer, InconsistencyResetsToMinimumInterval) {
  TrickleTimer timer(SmallConfig(), 3, 0xfeed);
  timer.Start(0);
  // At the minimum interval a reset is a no-op (classic Trickle).
  EXPECT_FALSE(timer.OnInconsistent(100));
  timer.NoteActivity();
  ASSERT_TRUE(timer.OnIntervalEnd(timer.end_at()));
  ASSERT_EQ(timer.end_at(), 1000 + 2000);
  // Now the interval is 2000: an inconsistent beacon restarts at 1000.
  EXPECT_TRUE(timer.OnInconsistent(1500));
  EXPECT_EQ(timer.end_at(), 1500 + 1000);
}

TEST(TrickleTimer, SuppressionCountsConsistentAnnouncements) {
  DissemConfig config = SmallConfig();
  config.suppression_k = 2;
  TrickleTimer timer(config, 3, 0xfeed);
  timer.Start(0);
  EXPECT_TRUE(timer.ShouldSendAtFire());
  timer.OnConsistent();
  EXPECT_TRUE(timer.ShouldSendAtFire());  // 1 < k
  timer.OnConsistent();
  EXPECT_FALSE(timer.ShouldSendAtFire());  // 2 >= k: suppressed
  timer.NoteActivity();
  ASSERT_TRUE(timer.OnIntervalEnd(timer.end_at()));
  EXPECT_TRUE(timer.ShouldSendAtFire());  // fresh interval, fresh count
}

TEST(TrickleTimer, GoesDormantAfterQuietMaxIntervalsAndRevivesOnStart) {
  TrickleTimer timer(SmallConfig(), 3, 0xfeed);
  timer.Start(0);
  // 1000 -> 2000 -> 4000 (max). Two quiet max-length intervals then dormant.
  ASSERT_TRUE(timer.OnIntervalEnd(timer.end_at()));
  ASSERT_TRUE(timer.OnIntervalEnd(timer.end_at()));
  ASSERT_TRUE(timer.OnIntervalEnd(timer.end_at()));   // quiet #1 at max
  ASSERT_FALSE(timer.OnIntervalEnd(timer.end_at()));  // quiet #2: dormant
  EXPECT_FALSE(timer.running());
  timer.Start(100000);
  EXPECT_TRUE(timer.running());
  EXPECT_EQ(timer.end_at(), 101000);  // back at the minimum interval
}

TEST(TrickleTimer, JitterIsDeterministicPerNodeAndFreshPerInterval) {
  TrickleTimer a(SmallConfig(), 3, 0xfeed);
  TrickleTimer b(SmallConfig(), 3, 0xfeed);
  a.Start(0);
  b.Start(0);
  EXPECT_EQ(a.fire_at(), b.fire_at());  // same node, same key: reproducible
  std::vector<SimTime> fires;
  for (int i = 0; i < 3; ++i) {
    fires.push_back(a.fire_at());
    a.NoteActivity();
    ASSERT_TRUE(a.OnIntervalEnd(a.end_at()));
  }
  // The jitter index is monotonic, so restarted intervals do not replay
  // the same offset pattern from the interval start.
  EXPECT_TRUE(fires[0] != fires[1] || fires[1] != fires[2]);
}

// --- Chunk planning ----------------------------------------------------------

TEST(ChunkPlan, OneChunkFitsInsidePaceFractionOfPeriod) {
  DissemConfig config;  // pace_fraction 0.25
  // 1 us per byte, 20 ms period: budget 5 ms -> 5000-byte chunks.
  ChunkPlan plan = PlanChunks(12000, Microseconds(1), Milliseconds(20), config);
  EXPECT_EQ(plan.chunk_bytes, 5000u);
  EXPECT_EQ(plan.total, 3u);
}

TEST(ChunkPlan, SmallArtifactIsOneChunkAndFloorIs128) {
  DissemConfig config;
  ChunkPlan one = PlanChunks(200, Microseconds(1), Milliseconds(20), config);
  EXPECT_EQ(one.chunk_bytes, 200u);
  EXPECT_EQ(one.total, 1u);
  // A pathologically slow link still ships at least 128 bytes per chunk.
  ChunkPlan floor = PlanChunks(1000, Milliseconds(1), Milliseconds(20), config);
  EXPECT_EQ(floor.chunk_bytes, 128u);
  EXPECT_EQ(floor.total, 8u);
}

TEST(ChunkPlan, SpacingLeavesIdleGapPerDutyFactor) {
  DissemConfig config;  // duty 0.5: gap equals the tx time
  EXPECT_EQ(ChunkSpacing(1000, config), 2001);
}

// --- Spec plumbing -----------------------------------------------------------

TEST(DissemSpec, ConfigKeysRoundTripCanonically) {
  const std::string text =
      "BTRX 1\n"
      "NAME d\n"
      "SCENARIO convoy nodes=8\n"
      "CONFIG f=1 recovery-us=800000 seed=3 dissem=gossip beacon-us=5000 suppress-k=2\n"
      "PHASE periods=10\n"
      "END\n";
  auto spec = ParseExperimentSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->dissem, DissemMode::kGossip);
  EXPECT_EQ(spec->beacon_period, Microseconds(5000));
  EXPECT_EQ(spec->suppress_k, 2u);
  EXPECT_EQ(SerializeExperimentSpec(*spec), text);
  // Defaults serialize as absent keys.
  spec->dissem = DissemMode::kUnicast;
  spec->beacon_period = 0;
  spec->suppress_k = 0;
  EXPECT_EQ(SerializeExperimentSpec(*spec).find("dissem"), std::string::npos);
}

TEST(DissemSpec, RejectsUnknownModeAndZeroValues) {
  const char* kBad[] = {
      "CONFIG f=1 recovery-us=800000 seed=3 dissem=broadcast\n",
      "CONFIG f=1 recovery-us=800000 seed=3 beacon-us=0\n",
      "CONFIG f=1 recovery-us=800000 seed=3 suppress-k=0\n",
  };
  for (const char* config : kBad) {
    const std::string text = std::string("BTRX 1\nNAME d\nSCENARIO convoy nodes=8\n") +
                             config + "PHASE periods=10\nEND\n";
    EXPECT_FALSE(ParseExperimentSpec(text).ok()) << config;
  }
}

// --- End-to-end: the convoy staged edit with heartbeats on -------------------

// The convoy_staged_task scenario reduced to its rollout phase, with
// heartbeats left ON (the configuration that used to be annotated away).
std::string ConvoyRolloutSpec(const std::string& extra_config) {
  return "BTRX 1\n"
         "NAME dissem_convoy\n"
         "SCENARIO convoy nodes=8\n"
         "CONFIG f=1 recovery-us=800000 seed=3" +
         extra_config +
         "\n"
         "PHASE periods=60\n"
         "EDIT at-us=600000 kind=task-add name=gap_log task-kind=sink wcet-us=80"
         " crit=best-effort node=0 deadline-us=20000 chan=gap_est1:gap_log:64\n"
         "END\n";
}

ExperimentReport RunSpecText(const std::string& text) {
  auto spec = ParseExperimentSpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto report = RunExperiment(*spec);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *report;
}

TEST(GossipRollout, ConvoyWithHeartbeatsStaysCleanAndUndercutsUnicastBytes) {
  const ExperimentReport unicast = RunSpecText(ConvoyRolloutSpec(""));
  const ExperimentReport gossip = RunSpecText(ConvoyRolloutSpec(" dissem=gossip"));
  ASSERT_EQ(unicast.phases.size(), 1u);
  ASSERT_EQ(gossip.phases.size(), 1u);
  const RunReport& u = unicast.phases[0];
  const RunReport& g = gossip.phases[0];

  // The bug being fixed: the unicast install burst starves the
  // distributor's heartbeats, honest nodes get convicted for omission, and
  // their sinks go missing. Gossip paces below the heartbeat cadence and
  // none of that happens.
  EXPECT_GT(u.correctness.incorrect_missing, 0u);
  EXPECT_EQ(g.correctness.incorrect_missing, 0u);
  EXPECT_EQ(g.correctness.correct_instances, g.correctness.total_instances);
  EXPECT_FALSE(g.correctness.btr_violated);

  // Gossip completes on every node (unicast does not even manage that:
  // relay guardians drop its burst on backlog).
  EXPECT_EQ(g.install.nodes_installed, 8u);
  EXPECT_NE(g.install.completed_at, kSimTimeNever);

  // The suppression + leaf-slice economy must show up on the wire: fewer
  // control-class bytes on the shared bus than the unicast baseline.
  const uint64_t u_control =
      u.network.bytes_by_class[static_cast<int>(TrafficClass::kControl)];
  const uint64_t g_control =
      g.network.bytes_by_class[static_cast<int>(TrafficClass::kControl)];
  EXPECT_LT(g_control, u_control);

  // The gossip agents actually gossiped: beacons were sent, some were
  // suppressed, and transfers were served hop-by-hop.
  EXPECT_TRUE(g.install.gossip);
  EXPECT_GT(g.install.dissem.beacons_sent, 0u);
  EXPECT_GT(g.install.dissem.beacons_suppressed, 0u);
  EXPECT_GT(g.install.dissem.requests_sent, 0u);
  EXPECT_GT(g.install.dissem.serves, 0u);
}

TEST(GossipRollout, RolloutFreeRunsAreByteIdenticalToUnicast) {
  const std::string no_edit =
      "BTRX 1\n"
      "NAME dissem_idle\n"
      "SCENARIO convoy nodes=8\n"
      "CONFIG f=1 recovery-us=800000 seed=3\n"
      "PHASE periods=30\n"
      "END\n";
  auto unicast_spec = ParseExperimentSpec(no_edit);
  ASSERT_TRUE(unicast_spec.ok());
  auto gossip_spec = ParseExperimentSpec(no_edit);
  ASSERT_TRUE(gossip_spec.ok());
  gossip_spec->dissem = DissemMode::kGossip;
  auto unicast = RunExperiment(*unicast_spec);
  auto gossip = RunExperiment(*gossip_spec);
  ASSERT_TRUE(unicast.ok());
  ASSERT_TRUE(gossip.ok());
  // No rollout, no gossip traffic, no report drift: the dissem mode only
  // exists once an edit is staged.
  EXPECT_EQ(SerializeExperimentReport(*unicast), SerializeExperimentReport(*gossip));
}

TEST(GossipRollout, ReportsAreByteIdenticalAcrossShardCounts) {
  setenv("BTR_SHARD_EXEC", "threads", 1);
  std::string baseline;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    auto spec = ParseExperimentSpec(ConvoyRolloutSpec(" dissem=gossip"));
    ASSERT_TRUE(spec.ok());
    spec->shards = shards;
    auto report = RunExperiment(*spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const std::string dump = SerializeExperimentReport(*report);
    if (shards == 1) {
      baseline = dump;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(dump, baseline) << "report diverged at shards=" << shards;
    }
  }
  unsetenv("BTR_SHARD_EXEC");
}

// --- Distributor election (the healed-transient ban) -------------------------

// Every node suffers a transient delay that heals well before the edit's
// rollout instant. The old election disqualified any node with a
// *registered* injection, so this spec had no candidate at all and the
// rollout was refused; the fixed election asks who is honest *at rollout
// time* and elects node 0.
TEST(DistributorElection, HealedTransientIsElectableAndRolloutCompletes) {
  std::string text =
      "BTRX 1\n"
      "NAME healed_distributor\n"
      "SCENARIO convoy nodes=8\n"
      "CONFIG f=1 recovery-us=800000 seed=3 heartbeats=0\n"
      "PHASE periods=60\n";
  for (int n = 0; n < 8; ++n) {
    text += "FAULT node=" + std::to_string(n) +
            " at-us=100000 until-us=200000 behavior=delay\n";
  }
  text +=
      "EDIT at-us=600000 kind=task-add name=gap_log task-kind=sink wcet-us=80"
      " crit=best-effort node=0 deadline-us=20000 chan=gap_est1:gap_log:64\n"
      "END\n";
  const ExperimentReport report = RunSpecText(text);
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_NE(report.phases[0].install.started_at, kSimTimeNever);
  EXPECT_GT(report.phases[0].install.nodes_installed, 0u);
}

TEST(DistributorElection, RefusedWhenNoNodeIsHonestAtRolloutTime) {
  std::string text =
      "BTRX 1\n"
      "NAME no_honest_distributor\n"
      "SCENARIO convoy nodes=8\n"
      "CONFIG f=1 recovery-us=800000 seed=3 heartbeats=0\n"
      "PHASE periods=60\n";
  for (int n = 0; n < 8; ++n) {
    // Still active at the rollout instant (600 ms).
    text += "FAULT node=" + std::to_string(n) +
            " at-us=100000 until-us=900000 behavior=delay\n";
  }
  text +=
      "EDIT at-us=600000 kind=task-add name=gap_log task-kind=sink wcet-us=80"
      " crit=best-effort node=0 deadline-us=20000 chan=gap_est1:gap_log:64\n"
      "END\n";
  auto spec = ParseExperimentSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto report = RunExperiment(*spec);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace btr
