// Second-layer integration tests: behaviors that cut across several
// subsystems at once (serialization + runtime, simultaneous faults, random
// scenarios end-to-end, pathological topologies).

#include <gtest/gtest.h>

#include "src/core/btr_system.h"
#include "src/core/strategy_io.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

BtrConfig DefaultConfig(uint32_t f = 1, uint64_t seed = 7) {
  BtrConfig config;
  config.planner.max_faults = f;
  config.planner.recovery_bound = Milliseconds(500);
  config.seed = seed;
  return config;
}

NodeId PrimaryHostOf(const BtrSystem& system, const std::string& task_name) {
  const TaskId task = system.scenario().workload.FindTask(task_name);
  const Plan* root = system.strategy().Lookup(FaultSet());
  return root->placement()[system.planner().graph().PrimaryOf(task)];
}

TEST(Integration2, SimultaneousDoubleFaultWithF2Recovers) {
  // Both faults manifest in the same period: the fault set jumps by two and
  // the strategy must still have the {x, y} plan ready.
  BtrSystem system(MakeAvionicsScenario(8), DefaultConfig(2));
  ASSERT_TRUE(system.Plan().ok());
  const NodeId a = PrimaryHostOf(system, "control_law");
  const NodeId b = PrimaryHostOf(system, "att_fusion");
  ASSERT_NE(a, b);
  system.AddFault({a, Milliseconds(150), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  system.AddFault({b, Milliseconds(152), FaultBehavior::kValueCorruption, 0,
                   NodeId::Invalid(), 0});
  auto report = system.Run(250);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_NE(report->faults[1].first_conviction, kSimTimeNever);
  EXPECT_FALSE(report->correctness.btr_violated)
      << "max recovery " << ToMillisF(report->correctness.max_recovery) << " ms";
}

TEST(Integration2, FaultBeyondFIsBestEffort) {
  // Two faults with f = 1: the system has no plan for the second. It must
  // not crash, and must keep running whatever it can; Definition 3.1 only
  // promises anything for <= f faults, so we do not assert on it.
  BtrSystem system(MakeAvionicsScenario(6), DefaultConfig(1));
  ASSERT_TRUE(system.Plan().ok());
  const NodeId a = PrimaryHostOf(system, "control_law");
  const NodeId b = PrimaryHostOf(system, "att_fusion");
  system.AddFault({a, Milliseconds(150), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  system.AddFault({b, Milliseconds(600), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  auto report = system.Run(200);
  ASSERT_TRUE(report.ok());
  // The first fault is handled normally.
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever);
  EXPECT_GT(report->correctness.correct_instances, 0u);
}

TEST(Integration2, LoadedStrategyRunsIdenticallyToOriginal) {
  // Plan, serialize, reload into a fresh system — runtime behavior under a
  // fault must be identical (the strategy is the system's entire brain).
  Scenario scenario = MakeScadaScenario();
  BtrConfig config = DefaultConfig(1, 3);
  config.planner.recovery_bound = Seconds(2);

  BtrSystem original(scenario, config);
  ASSERT_TRUE(original.Plan().ok());
  const std::string blob =
      SaveStrategy(original.strategy(), original.planner().graph(),
                   original.scenario().topology);

  const NodeId victim = PrimaryHostOf(original, "relief_logic");
  auto run = [&](BtrSystem* system) {
    system->AddFault(
        {victim, Milliseconds(500), FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
    auto report = system->Run(100);
    EXPECT_TRUE(report.ok());
    return std::make_tuple(report->correctness.correct_instances,
                           report->correctness.max_recovery,
                           report->faults[0].first_conviction, report->events_executed);
  };
  const auto original_result = run(&original);

  // A fresh system with the loaded strategy: we re-plan (to rebuild the
  // graph) then overwrite via load and verify equivalence through behavior.
  BtrSystem reloaded(scenario, config);
  ASSERT_TRUE(reloaded.Plan().ok());
  auto loaded = LoadStrategy(blob, reloaded.planner().graph(), reloaded.scenario().topology);
  ASSERT_TRUE(loaded.ok());
  // Behavioral check via the loaded object itself: identical plan content.
  for (const FaultSet& faults : original.strategy().PlannedSets()) {
    const Plan* a = original.strategy().Lookup(faults);
    const Plan* b = loaded->Lookup(faults);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->placement(), b->placement());
  }
  const auto reloaded_result = run(&reloaded);
  EXPECT_EQ(original_result, reloaded_result);
}

TEST(Integration2, RandomScenariosSurviveRandomFaults) {
  // End-to-end sweep: random workload, random victim, random behavior; the
  // system must always detect (or legitimately shed) and never violate
  // Definition 3.1.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 101);
    RandomDagParams params;
    params.period = Milliseconds(40);
    params.min_msg_bytes = 32;
    params.max_msg_bytes = 256;
    params.bus_bandwidth_bps = 100'000'000;
    Scenario scenario = MakeRandomScenario(&rng, params);

    BtrConfig config = DefaultConfig(1, seed);
    config.planner.recovery_bound = Seconds(1);
    BtrSystem system(std::move(scenario), config);
    ASSERT_TRUE(system.Plan().ok()) << "seed " << seed;

    const FaultBehavior behaviors[] = {FaultBehavior::kCrash,
                                       FaultBehavior::kValueCorruption,
                                       FaultBehavior::kOmission};
    const NodeId victim(static_cast<uint32_t>(
        rng.NextBelow(system.scenario().topology.node_count())));
    system.AddFault({victim, Milliseconds(200),
                     behaviors[rng.NextBelow(3)], 0, NodeId::Invalid(), 0});
    auto report = system.Run(100);
    ASSERT_TRUE(report.ok()) << "seed " << seed;
    EXPECT_FALSE(report->correctness.btr_violated)
        << "seed " << seed << ": victim " << ToString(victim) << " recovery "
        << ToMillisF(report->correctness.max_recovery) << " ms";
  }
}

TEST(Integration2, RingHealsAroundOmittingRelay) {
  // Convoy ring: after the relay is convicted, the new plan's routing must
  // not pass through it, and traffic must actually flow the other way.
  BtrConfig config = DefaultConfig(1);
  config.planner.recovery_bound = Seconds(1);
  BtrSystem system(MakeConvoyScenario(5), config);
  ASSERT_TRUE(system.Plan().ok());
  const NodeId relay(5);
  system.AddFault({relay, Milliseconds(300), FaultBehavior::kOmission, 0,
                   NodeId::Invalid(), 0});
  auto report = system.Run(200);
  ASSERT_TRUE(report.ok());
  ASSERT_NE(report->faults[0].first_conviction, kSimTimeNever);
  const Plan* healed = system.strategy().Lookup(FaultSet({relay}));
  ASSERT_NE(healed, nullptr);
  const Topology& topo = system.scenario().topology;
  for (size_t a = 0; a < topo.node_count(); ++a) {
    for (size_t b = 0; b < topo.node_count(); ++b) {
      const NodeId na(static_cast<uint32_t>(a));
      const NodeId nb(static_cast<uint32_t>(b));
      if (na == nb || na == relay || nb == relay) {
        continue;
      }
      EXPECT_FALSE(healed->routing->RouteUsesRelay(na, nb, relay));
    }
  }
  EXPECT_FALSE(report->correctness.btr_violated);
}

TEST(Integration2, DelayedFaultLateInRunStillCaught) {
  // Manifestation near the end of the run: detection has little time left;
  // the monitor must attribute trailing badness to it rather than declare a
  // violation.
  BtrSystem system(MakeAvionicsScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  const NodeId victim = PrimaryHostOf(system, "control_law");
  system.AddFault({victim, Milliseconds(1950), FaultBehavior::kValueCorruption, 0,
                   NodeId::Invalid(), 0});
  auto report = system.Run(200);  // run ends at 2000 ms
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->correctness.btr_violated);
}

TEST(Integration2, RepeatedRunsOnOneSystemAreIndependent) {
  // Run() must not leak state between invocations (fresh simulator, network,
  // and runtimes each time).
  BtrSystem system(MakeScadaScenario(), DefaultConfig());
  ASSERT_TRUE(system.Plan().ok());
  auto first = system.Run(50);
  ASSERT_TRUE(first.ok());
  auto second = system.Run(50);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->events_executed, second->events_executed);
  EXPECT_EQ(first->correctness.correct_instances, second->correctness.correct_instances);
}

}  // namespace
}  // namespace btr
