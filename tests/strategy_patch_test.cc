// Fuzzed apply-equals-full-install oracle for the strategy install plane
// (strategy_patch.{h,cc} + the PATCH records in strategy_io + the runtime's
// InstallEngine).
//
// The contract under test, for any supported edit:
//   apply(patch(old, new) sliced for n, slice(old, n)) == slice(new, n)
// byte-for-byte for every node n, and reassembling all N applied slices
// serializes byte-identically to new — the same oracle discipline as
// tests/incremental_replan_test.cc. The adversarial half then drives
// truncations, forged counts, out-of-range references, wrong-base patches,
// and a bit-flip sweep through InstallEngine::ApplyPatch and asserts via a
// state fingerprint that every rejection happens before any installed
// state is mutated.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/adversary.h"
#include "src/core/btr_system.h"
#include "src/core/monitor.h"
#include "src/core/planner.h"
#include "src/core/runtime.h"
#include "src/core/strategy_builder.h"
#include "src/core/strategy_delta.h"
#include "src/core/strategy_io.h"
#include "src/core/strategy_patch.h"
#include "src/crypto/keys.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

// One generation of an edited system (Planner pins topo/workload in place;
// generations live in a deque and are never moved afterwards).
struct System {
  Topology topo;
  Dataflow workload{Milliseconds(10)};
  std::unique_ptr<Planner> planner;

  void MakePlanner(const PlannerConfig& config) {
    planner = std::make_unique<Planner>(&topo, &workload, config);
  }
};

PlannerConfig SmallConfig(uint32_t f) {
  PlannerConfig config;
  config.max_faults = f;
  config.planner_threads = 2;
  return config;
}

std::string Blob(const Strategy& strategy, const Planner& planner) {
  return SaveStrategy(strategy, planner.graph(), planner.topology());
}

System* MakeBaseSystem(std::deque<System>* generations, const PlannerConfig& config,
                       uint64_t seed = 7) {
  Rng rng(seed);
  RandomDagParams params;
  params.compute_nodes = 4;
  params.layers = 2;
  params.tasks_per_layer = 3;
  Scenario s = MakeRandomScenario(&rng, params);
  System& sys = generations->emplace_back();
  sys.topo = std::move(s.topology);
  sys.workload = std::move(s.workload);
  sys.topo.AddLink({NodeId(2), NodeId(3)}, 25'000'000, Microseconds(2), "xlink");
  sys.MakePlanner(config);
  return &sys;
}

// Applies `delta`, builds the edited system's strategy, and checks the full
// per-node patch oracle against the two blobs. Returns the new blob.
std::string CheckPatchOracle(const std::string& old_blob, const System& old_sys,
                             const StrategyDelta& delta, std::deque<System>* generations,
                             const PlannerConfig& config, const char* label) {
  System& next = generations->emplace_back();
  Status applied =
      ApplyDelta(old_sys.topo, old_sys.workload, delta, &next.topo, &next.workload);
  if (!applied.ok()) {
    ADD_FAILURE() << label << ": ApplyDelta failed: " << applied.ToString();
    return std::string();
  }
  next.MakePlanner(config);
  StrategyBuilder builder(next.planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  if (!strategy.ok()) {
    return std::string();  // edited system infeasible; nothing to install
  }
  const std::string new_blob = Blob(*strategy, *next.planner);

  auto update = BuildStrategyUpdate(old_blob, new_blob);
  if (!update.ok()) {
    ADD_FAILURE() << label << ": BuildStrategyUpdate failed: "
                  << update.status().ToString();
    return std::string();
  }
  const size_t n = update->base_slices.size();
  std::vector<std::string> applied_slices;
  applied_slices.reserve(n);
  for (size_t node = 0; node < n; ++node) {
    auto patch = ParseStrategyPatch(update->patch_slices[node]);
    if (!patch.ok()) {
      ADD_FAILURE() << label << " node " << node << ": " << patch.status().ToString();
      return std::string();
    }
    auto result = ApplyPatchToSlice(update->base_slices[node], *patch);
    if (!result.ok()) {
      ADD_FAILURE() << label << " node " << node << ": " << result.status().ToString();
      return std::string();
    }
    // The oracle: applying the patch to the old slice must equal the full
    // install of the new slice, byte-for-byte.
    EXPECT_EQ(*result, update->full_slices[node])
        << label << ": applied slice diverged for node " << node;
    applied_slices.push_back(std::move(*result));
  }
  auto reassembled = ReassembleStrategy(applied_slices);
  if (!reassembled.ok()) {
    ADD_FAILURE() << label << ": " << reassembled.status().ToString();
    return std::string();
  }
  EXPECT_EQ(*reassembled, new_blob) << label << ": reassembly diverged from the new blob";
  return new_blob;
}

TEST(StrategyPatch, SlicesReassembleToTheBlob) {
  const PlannerConfig config = SmallConfig(2);
  std::deque<System> generations;
  System* sys = MakeBaseSystem(&generations, config);
  StrategyBuilder builder(sys->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();
  const std::string blob = Blob(*strategy, *sys->planner);

  std::vector<std::string> slices;
  size_t total_slice_bytes = 0;
  for (uint32_t n = 0; n < sys->topo.node_count(); ++n) {
    auto slice = ExtractSlice(blob, n);
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    EXPECT_TRUE(ValidateSliceText(*slice, n).ok());
    // Table granularity: a slice must be smaller than the whole blob.
    EXPECT_LT(slice->size(), blob.size());
    total_slice_bytes += slice->size();
    slices.push_back(std::move(*slice));
  }
  (void)total_slice_bytes;
  auto reassembled = ReassembleStrategy(slices);
  ASSERT_TRUE(reassembled.ok()) << reassembled.status().ToString();
  EXPECT_EQ(*reassembled, blob);

  // SaveStrategySlice is the Strategy-level convenience for the same carve.
  auto direct = SaveStrategySlice(*strategy, sys->planner->graph(), sys->topo, 0);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*direct, slices[0]);
}

TEST(StrategyPatch, IdentityPatchIsTinyAndApplies) {
  const PlannerConfig config = SmallConfig(1);
  std::deque<System> generations;
  System* sys = MakeBaseSystem(&generations, config);
  StrategyBuilder builder(sys->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();
  const std::string blob = Blob(*strategy, *sys->planner);

  auto patch = MakeStrategyPatch(blob, blob);
  ASSERT_TRUE(patch.ok()) << patch.status().ToString();
  EXPECT_TRUE(patch->dels.empty());
  EXPECT_TRUE(patch->sets.empty());
  EXPECT_TRUE(patch->deleted_old.empty());
  for (const StrategyPatch::BodyDef& def : patch->bodies) {
    EXPECT_TRUE(def.copy);
  }
  for (uint32_t n = 0; n < sys->topo.node_count(); ++n) {
    auto slice = ExtractSlice(blob, n);
    ASSERT_TRUE(slice.ok());
    auto sliced_text = SaveStrategyPatchSlice(*patch, n);
    ASSERT_TRUE(sliced_text.ok());
    // An identity patch carries no bodies, so it is far smaller than the
    // blob it stands in for.
    EXPECT_LT(sliced_text->size(), blob.size() / 10);
    auto parsed = ParseStrategyPatch(*sliced_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto result = ApplyPatchToSlice(*slice, *parsed);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*result, *slice);
  }
}

TEST(StrategyPatch, DirectedSingleEditOracle) {
  const PlannerConfig config = SmallConfig(1);
  std::deque<System> generations;
  System* sys = MakeBaseSystem(&generations, config);
  StrategyBuilder builder(sys->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();
  const std::string blob = Blob(*strategy, *sys->planner);

  // Redundant-link flap: bodies unchanged, so the patch is pure reuse.
  StrategyDelta flap;
  flap.edits.push_back(DeltaEdit::LinkRemove("xlink"));
  const std::string after =
      CheckPatchOracle(blob, *sys, flap, &generations, config, "link-flap");
  ASSERT_FALSE(after.empty());

  // Staged task add: the augmented universe grows, DIM changes, bodies may
  // keep their text; the oracle must still hold.
  TaskSpec staged;
  staged.name = "staged_filter";
  staged.kind = TaskKind::kCompute;
  staged.wcet = Microseconds(150);
  staged.state_bytes = 2048;
  staged.criticality = Criticality::kMedium;
  StrategyDelta add;
  add.edits.push_back(DeltaEdit::TaskAdd(staged));
  const std::string after2 = CheckPatchOracle(after, generations.back(), add, &generations,
                                              config, "staged-add");
  ASSERT_FALSE(after2.empty());

  // Reweight: shedding order and utilities shift; bodies genuinely change.
  StrategyDelta reweight;
  reweight.edits.push_back(DeltaEdit::TaskReweight("snk0", Criticality::kSafetyCritical));
  const std::string after3 = CheckPatchOracle(after2, generations.back(), reweight,
                                              &generations, config, "reweight");
  ASSERT_FALSE(after3.empty());
}

TEST(StrategyPatch, ZeroDegradedModesRoundTrip) {
  // f = 0: the strategy is a single fault-free mode. Slicing, patching,
  // and reassembly must handle the no-degraded-modes edge exactly like any
  // other strategy.
  const PlannerConfig config = SmallConfig(0);
  std::deque<System> generations;
  System* sys = MakeBaseSystem(&generations, config);
  StrategyBuilder builder(sys->planner.get(), 1);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();
  const std::string blob = Blob(*strategy, *sys->planner);

  StrategyDelta flap;
  flap.edits.push_back(DeltaEdit::LinkRemove("xlink"));
  const std::string after =
      CheckPatchOracle(blob, *sys, flap, &generations, config, "f0-flap");
  ASSERT_FALSE(after.empty());
}

// --- randomized fuzz oracle ---------------------------------------------

struct StreamState {
  std::vector<std::string> own_links;
  std::vector<std::string> own_tasks;
  int serial = 0;
};

// Random edit generator, mirroring the proven one in
// incremental_replan_test.cc (kept in sync by hand; both only require that
// ApplyDelta accepts the edit).
StrategyDelta RandomDelta(Rng* rng, const System& sys, StreamState* state) {
  StrategyDelta delta;
  const size_t node_count = sys.topo.node_count();
  for (int attempt = 0; attempt < 8 && delta.edits.empty(); ++attempt) {
    switch (rng->NextBelow(6)) {
      case 0: {  // link add
        const std::string name = "xl" + std::to_string(state->serial++);
        const uint32_t a = static_cast<uint32_t>(rng->NextBelow(node_count));
        uint32_t b = static_cast<uint32_t>(rng->NextBelow(node_count));
        if (b == a) {
          b = (b + 1) % static_cast<uint32_t>(node_count);
        }
        delta.edits.push_back(DeltaEdit::LinkAdd(
            name, {NodeId(a), NodeId(b)},
            10'000'000 + static_cast<int64_t>(rng->NextBelow(40'000'000)),
            Microseconds(static_cast<int64_t>(rng->NextBelow(5)) + 1)));
        state->own_links.push_back(name);
        break;
      }
      case 1: {  // link remove (only links this stream added)
        if (state->own_links.empty()) {
          break;
        }
        const size_t pick = rng->NextBelow(state->own_links.size());
        delta.edits.push_back(DeltaEdit::LinkRemove(state->own_links[pick]));
        state->own_links.erase(state->own_links.begin() + static_cast<long>(pick));
        break;
      }
      case 2: {  // latency re-measurement
        const LinkSpec& link = sys.topo.link(
            LinkId(static_cast<uint32_t>(rng->NextBelow(sys.topo.link_count()))));
        const bool change_bw = rng->NextBool(0.7);
        const bool change_prop = !change_bw || rng->NextBool(0.3);
        delta.edits.push_back(DeltaEdit::LinkLatencyChange(
            link.name,
            change_bw
                ? std::max<int64_t>(1'000'000,
                                    link.bandwidth_bps / 2 +
                                        static_cast<int64_t>(rng->NextBelow(
                                            static_cast<uint64_t>(link.bandwidth_bps))))
                : 0,
            change_prop
                ? link.propagation + Microseconds(static_cast<int64_t>(rng->NextBelow(4)))
                : -1));
        break;
      }
      case 3: {  // task add: staged or wired into a sink
        TaskSpec spec;
        spec.name = "xt" + std::to_string(state->serial++);
        spec.kind = TaskKind::kCompute;
        spec.wcet = Microseconds(static_cast<int64_t>(rng->NextBelow(200)) + 50);
        spec.state_bytes = static_cast<uint32_t>(rng->NextBelow(4096));
        spec.criticality = static_cast<Criticality>(rng->NextBelow(kCriticalityLevels));
        std::vector<DeltaChannel> channels;
        if (rng->NextBool(0.6)) {
          std::vector<TaskId> feeders;
          for (const TaskSpec& t : sys.workload.tasks()) {
            if (t.kind != TaskKind::kSink) {
              feeders.push_back(t.id);
            }
          }
          const std::vector<TaskId> sinks = sys.workload.SinkIds();
          if (!feeders.empty() && !sinks.empty()) {
            const TaskId from = feeders[rng->NextBelow(feeders.size())];
            const TaskId to = sinks[rng->NextBelow(sinks.size())];
            channels.push_back({sys.workload.task(from).name, spec.name,
                                static_cast<uint32_t>(rng->NextBelow(512) + 32)});
            channels.push_back({spec.name, sys.workload.task(to).name,
                                static_cast<uint32_t>(rng->NextBelow(512) + 32)});
          }
        }
        delta.edits.push_back(DeltaEdit::TaskAdd(spec, std::move(channels)));
        state->own_tasks.push_back(spec.name);
        break;
      }
      case 4: {  // task remove (only tasks this stream added)
        if (state->own_tasks.empty()) {
          break;
        }
        const size_t pick = rng->NextBelow(state->own_tasks.size());
        delta.edits.push_back(DeltaEdit::TaskRemove(state->own_tasks[pick]));
        state->own_tasks.erase(state->own_tasks.begin() + static_cast<long>(pick));
        break;
      }
      case 5: {  // reweight
        const std::vector<TaskSpec>& tasks = sys.workload.tasks();
        const TaskSpec& t = tasks[rng->NextBelow(tasks.size())];
        delta.edits.push_back(DeltaEdit::TaskReweight(
            t.name, static_cast<Criticality>(rng->NextBelow(kCriticalityLevels))));
        break;
      }
    }
  }
  if (delta.edits.empty()) {
    delta.edits.push_back(DeltaEdit::LinkLatencyChange(
        sys.topo.link(LinkId(0)).name, 0, sys.topo.link(LinkId(0)).propagation + 1));
  }
  return delta;
}

TEST(StrategyPatch, FuzzedApplyEqualsFullInstall) {
  constexpr int kSequences = 200;
  constexpr int kMaxEditsPerSequence = 3;
  int checked_steps = 0;

  for (int seq = 0; seq < kSequences; ++seq) {
    Rng rng(0xD15C0000 + static_cast<uint64_t>(seq));
    RandomDagParams params;
    params.compute_nodes = 3 + rng.NextBelow(3);
    params.sources = 2;
    params.sinks = 2;
    params.layers = 1 + rng.NextBelow(2);
    params.tasks_per_layer = 2 + rng.NextBelow(2);
    const PlannerConfig config = SmallConfig(rng.NextBool(0.25) ? 2 : 1);

    std::deque<System> generations;
    System& base = generations.emplace_back();
    {
      Scenario s = MakeRandomScenario(&rng, params);
      base.topo = std::move(s.topology);
      base.workload = std::move(s.workload);
    }
    base.MakePlanner(config);
    StrategyBuilder builder(base.planner.get(), config.planner_threads);
    auto strategy = builder.Build();
    if (!strategy.ok()) {
      continue;  // infeasible base scenario
    }
    std::string blob = Blob(*strategy, *base.planner);

    // One engine per node, chained across the whole stream: install the
    // base once, then ride every patch; the engine must always end on the
    // exact slice a full install would have produced.
    std::vector<InstallEngine> engines;
    for (uint32_t n = 0; n < base.topo.node_count(); ++n) {
      engines.emplace_back(NodeId(n));
      auto slice = ExtractSlice(blob, n);
      ASSERT_TRUE(slice.ok());
      ASSERT_TRUE(engines.back().InstallFull(*slice, FingerprintStrategyText(blob)).ok());
    }

    StreamState state;
    const System* current = &base;
    const int edits = 1 + static_cast<int>(rng.NextBelow(kMaxEditsPerSequence));
    for (int step = 0; step < edits; ++step) {
      const StrategyDelta delta = RandomDelta(&rng, *current, &state);
      const std::string label =
          "seq " + std::to_string(seq) + " step " + std::to_string(step);
      const std::string next_blob =
          CheckPatchOracle(blob, *current, delta, &generations, config, label.c_str());
      if (next_blob.empty()) {
        break;  // edit made the system infeasible; stream ends here
      }
      auto update = BuildStrategyUpdate(blob, next_blob);
      ASSERT_TRUE(update.ok());
      for (uint32_t n = 0; n < engines.size(); ++n) {
        ASSERT_TRUE(engines[n].ApplyPatch(update->patch_slices[n]).ok()) << label;
        EXPECT_EQ(engines[n].slice(), update->full_slices[n]) << label;
        EXPECT_EQ(engines[n].strategy_fingerprint(), update->target_fp) << label;
      }
      blob = next_blob;
      current = &generations.back();
      ++checked_steps;
    }
  }
  // Only meaningful if the streams actually exercised the patch plane.
  EXPECT_GE(checked_steps, kSequences);
}

// --- adversarial corruption ----------------------------------------------

struct CorruptionFixture {
  std::deque<System> generations;
  PlannerConfig config = SmallConfig(1);
  std::string base_blob;
  std::string target_blob;
  StrategyUpdate update;

  CorruptionFixture() {
    System* sys = MakeBaseSystem(&generations, config);
    StrategyBuilder builder(sys->planner.get(), config.planner_threads);
    auto strategy = builder.Build();
    EXPECT_TRUE(strategy.ok());
    base_blob = Blob(*strategy, *sys->planner);

    StrategyDelta delta;
    delta.edits.push_back(DeltaEdit::LinkRemove("xlink"));
    delta.edits.push_back(DeltaEdit::TaskReweight("snk0", Criticality::kSafetyCritical));
    System& next = generations.emplace_back();
    EXPECT_TRUE(
        ApplyDelta(sys->topo, sys->workload, delta, &next.topo, &next.workload).ok());
    next.MakePlanner(config);
    StrategyBuilder next_builder(next.planner.get(), config.planner_threads);
    auto next_strategy = next_builder.Build();
    EXPECT_TRUE(next_strategy.ok());
    target_blob = Blob(*next_strategy, *next.planner);

    auto built = BuildStrategyUpdate(base_blob, target_blob);
    EXPECT_TRUE(built.ok());
    update = std::move(*built);
  }

  // A fresh engine with node `n`'s base slice installed.
  InstallEngine EngineFor(uint32_t n) const {
    InstallEngine engine{NodeId(n)};
    EXPECT_TRUE(engine.InstallFull(update.base_slices[n], update.base_fp).ok());
    return engine;
  }
};

TEST(StrategyPatchCorruption, TruncationSweepRejectsWithoutMutation) {
  CorruptionFixture f;
  InstallEngine engine = f.EngineFor(1);
  const std::string& patch = f.update.patch_slices[1];
  const uint64_t before = engine.StateFingerprint();
  for (size_t cut = 0; cut < patch.size(); ++cut) {
    const bool line_boundary = cut == 0 || patch[cut - 1] == '\n';
    if (!line_boundary && cut % 3 != 0) {
      continue;
    }
    EXPECT_FALSE(engine.ApplyPatch(patch.substr(0, cut)).ok())
        << "truncation at byte " << cut << " applied";
    EXPECT_EQ(engine.StateFingerprint(), before)
        << "truncated patch mutated state at byte " << cut;
  }
  // The intact patch still applies afterwards.
  EXPECT_TRUE(engine.ApplyPatch(patch).ok());
  EXPECT_EQ(engine.strategy_fingerprint(), f.update.target_fp);
}

TEST(StrategyPatchCorruption, BitFlipSweepRejectsWithoutMutation) {
  CorruptionFixture f;
  InstallEngine engine = f.EngineFor(2);
  const std::string& patch = f.update.patch_slices[2];
  const uint64_t before = engine.StateFingerprint();
  for (size_t byte = 0; byte < patch.size(); ++byte) {
    std::string flipped = patch;
    flipped[byte] = static_cast<char>(flipped[byte] ^ (1u << (byte % 8)));
    if (flipped[byte] == patch[byte]) {
      continue;
    }
    EXPECT_FALSE(engine.ApplyPatch(flipped).ok())
        << "bit flip at byte " << byte << " applied";
    EXPECT_EQ(engine.StateFingerprint(), before)
        << "bit flip at byte " << byte << " mutated state";
  }
  EXPECT_TRUE(engine.ApplyPatch(patch).ok());
}

TEST(StrategyPatchCorruption, ForgedCountsRejected) {
  CorruptionFixture f;
  InstallEngine engine = f.EngineFor(0);
  const std::string& patch = f.update.patch_slices[0];
  const uint64_t before = engine.StateFingerprint();
  auto forge = [&](const std::string& needle, const std::string& replacement) {
    const size_t at = patch.find(needle);
    EXPECT_NE(at, std::string::npos) << needle;
    return patch.substr(0, at) + replacement + patch.substr(patch.find('\n', at));
  };
  // Forged body counts (both directions) and a forged mode total.
  EXPECT_FALSE(engine.ApplyPatch(forge("BODIES ", "BODIES 99999999 1")).ok());
  EXPECT_FALSE(engine.ApplyPatch(forge("BODIES ", "BODIES 1 99999999")).ok());
  EXPECT_FALSE(engine.ApplyPatch(forge("MODES ", "MODES 99999999 0 0")).ok());
  EXPECT_EQ(engine.StateFingerprint(), before);
}

TEST(StrategyPatchCorruption, OutOfRangeReferencesRejected) {
  CorruptionFixture f;
  InstallEngine engine = f.EngineFor(0);
  const uint64_t before = engine.StateFingerprint();

  // An MSET that references a body id beyond the declared body list.
  auto patch = ParseStrategyPatch(f.update.patch_slices[0]);
  ASSERT_TRUE(patch.ok());
  {
    StrategyPatch bad = *patch;
    if (bad.sets.empty()) {
      bad.sets.push_back({{}, 0});
      ++bad.final_mode_count;
    }
    bad.sets[0].ref = static_cast<uint32_t>(bad.bodies.size() + 7);
    EXPECT_FALSE(engine.ApplyPatch(SaveStrategyPatch(bad)).ok());
  }
  // A BCOPY that references a base body the installed slice does not have.
  {
    StrategyPatch bad = *patch;
    for (StrategyPatch::BodyDef& def : bad.bodies) {
      if (def.copy) {
        def.old_id = static_cast<uint32_t>(bad.old_body_count + 3);
        break;
      }
    }
    EXPECT_FALSE(engine.ApplyPatch(SaveStrategyPatch(bad)).ok());
  }
  // A MODE record whose fault node is outside the node universe.
  {
    StrategyPatch bad = *patch;
    bad.sets.push_back({{static_cast<uint32_t>(bad.node_count + 1)}, 0});
    EXPECT_FALSE(engine.ApplyPatch(SaveStrategyPatch(bad)).ok());
  }
  EXPECT_EQ(engine.StateFingerprint(), before);
}

TEST(StrategyPatchCorruption, WrongBaseAndWrongNodeRefused) {
  CorruptionFixture f;
  const uint64_t node = 1;
  InstallEngine engine = f.EngineFor(node);
  const uint64_t before = engine.StateFingerprint();

  // Apply the patch twice: the second application sees a different base
  // fingerprint (the chain moved on) and must be refused.
  ASSERT_TRUE(engine.ApplyPatch(f.update.patch_slices[node]).ok());
  const uint64_t after_first = engine.StateFingerprint();
  EXPECT_NE(after_first, before);
  EXPECT_FALSE(engine.ApplyPatch(f.update.patch_slices[node]).ok());
  EXPECT_EQ(engine.StateFingerprint(), after_first);

  // A patch sliced for another node must be refused by this node's engine.
  InstallEngine other = f.EngineFor(0);
  const uint64_t other_before = other.StateFingerprint();
  EXPECT_FALSE(other.ApplyPatch(f.update.patch_slices[node]).ok());
  EXPECT_EQ(other.StateFingerprint(), other_before);

  // A patch against a completely unrelated strategy must be refused.
  auto unrelated = MakeStrategyPatch(f.target_blob, f.target_blob);
  ASSERT_TRUE(unrelated.ok());
  auto unrelated_slice = SaveStrategyPatchSlice(*unrelated, 0);
  ASSERT_TRUE(unrelated_slice.ok());
  EXPECT_FALSE(other.ApplyPatch(*unrelated_slice).ok());
  EXPECT_EQ(other.StateFingerprint(), other_before);
}

// --- install flow over the simulated network ------------------------------

TEST(StrategyInstallFlow, PatchRolloutCompletesAndFallsBackOnCorruption) {
  // Plan an avionics system, edit it (link flap), and roll the patched
  // strategy out over the simulated network as control traffic.
  Scenario scenario = MakeAvionicsScenario(6);
  // Strictly worse than the dual backbone, so no route ever rides it and
  // removing it changes no schedule body (the patch stays tiny).
  scenario.topology.AddLink({NodeId(2), NodeId(3)}, 25'000'000, Microseconds(50), "xlink");
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(500);
  // Heartbeats share the control class with install traffic; a bursty
  // distributor can delay its own heartbeats past a period boundary and
  // get falsely convicted for omission. Pacing the rollout is the
  // ROADMAP's dissemination-scheduling item; this test isolates the
  // install plane itself.
  config.runtime.heartbeats = false;
  BtrSystem system(scenario, config);
  ASSERT_TRUE(system.Plan().ok());
  const std::string base_blob = SaveStrategy(
      system.strategy(), system.planner().graph(), system.scenario().topology);

  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("xlink"));
  Topology new_topo;
  Dataflow new_workload{Milliseconds(10)};
  ASSERT_TRUE(ApplyDelta(system.scenario().topology, system.scenario().workload, delta,
                         &new_topo, &new_workload)
                  .ok());
  Planner new_planner(&new_topo, &new_workload, config.planner);
  StrategyBuilder builder(&new_planner, 2);
  auto new_strategy = builder.Build();
  ASSERT_TRUE(new_strategy.ok());
  const std::string target_blob = SaveStrategy(*new_strategy, new_planner.graph(), new_topo);

  auto update_or = BuildStrategyUpdate(base_blob, target_blob);
  ASSERT_TRUE(update_or.ok());

  const Topology& topo = system.scenario().topology;
  const SimDuration period = system.scenario().workload.period();
  auto run_install = [&](std::shared_ptr<const StrategyUpdate> update,
                         InstallRunReport* report) {
    Simulator sim(config.seed);
    Network network(&sim, &topo, config.planner.network);
    Rng key_rng(config.seed ^ 0x5eedc0deULL);
    KeyStore keys(topo.node_count(), &key_rng);
    AdversarySpec adversary;
    Monitor monitor(&system.scenario().workload, &system.strategy(), &adversary,
                    config.planner.recovery_bound);
    RuntimeContext ctx;
    ctx.sim = &sim;
    ctx.network = &network;
    ctx.topo = &topo;
    ctx.workload = &system.scenario().workload;
    ctx.graph = &system.planner().graph();
    ctx.strategy = &system.strategy();
    ctx.planner = &system.planner();
    ctx.keys = &keys;
    ctx.adversary = &adversary;
    ctx.monitor = &monitor;
    ctx.config = config.runtime;
    BtrRuntime runtime(ctx);
    runtime.Start(20);
    runtime.ScheduleStrategyInstall(2 * period + 1, std::move(update), NodeId(0));
    sim.RunToCompletion();
    *report = runtime.install_report();
  };

  // Clean rollout: every node reaches the target via its patch slice.
  InstallRunReport clean;
  run_install(std::make_shared<const StrategyUpdate>(*update_or), &clean);
  EXPECT_EQ(clean.nodes_installed, topo.node_count());
  EXPECT_EQ(clean.fallbacks, 0u);
  EXPECT_NE(clean.completed_at, kSimTimeNever);
  EXPECT_GT(clean.completed_at, clean.started_at);
  // Delta install: total patch bytes stay below what one full blob costs,
  // let alone blob-per-node.
  EXPECT_LT(clean.patch_bytes_sent, target_blob.size());
  EXPECT_EQ(clean.full_bytes_sent, 0u);

  // Corrupt one node's patch in transit: that node must detect it, nack,
  // and converge through the full-slice fallback.
  StrategyUpdate corrupted = *update_or;
  corrupted.patch_slices[3][corrupted.patch_slices[3].size() / 2] ^= 0x20;
  InstallRunReport fallback;
  run_install(std::make_shared<const StrategyUpdate>(corrupted), &fallback);
  EXPECT_EQ(fallback.nodes_installed, topo.node_count());
  EXPECT_EQ(fallback.fallbacks, 1u);
  EXPECT_GT(fallback.full_bytes_sent, 0u);
  EXPECT_NE(fallback.completed_at, kSimTimeNever);

  // Corrupt the fallback slice too — by one digit of a T-row duration, so
  // the text still validates structurally and its SFP record (which chains
  // to the blob, not to its own bytes) is intact. Only the shipment's
  // content fingerprint can catch this; the node must keep nacking rather
  // than install it, and the distributor must give up after the per-node
  // cap instead of ping-ponging forever.
  StrategyUpdate poisoned = corrupted;
  std::string& slice3 = poisoned.full_slices[3];
  const size_t t_row = slice3.find("\nT ");
  ASSERT_NE(t_row, std::string::npos);
  const size_t line_end = slice3.find('\n', t_row + 1);
  const size_t duration_digit = line_end - 1;
  slice3[duration_digit] = slice3[duration_digit] == '7' ? '8' : '7';
  ASSERT_TRUE(ValidateSliceText(slice3, 3).ok());  // structurally sound...
  InstallRunReport poisoned_report;
  run_install(std::make_shared<const StrategyUpdate>(poisoned), &poisoned_report);
  // ...yet never installed: node 3 stays on its base slice, everyone else
  // converges, and the retry loop is bounded.
  EXPECT_EQ(poisoned_report.nodes_installed, topo.node_count() - 1);
  EXPECT_EQ(poisoned_report.fallbacks, kMaxInstallFallbacksPerNode);
  EXPECT_EQ(poisoned_report.completed_at, kSimTimeNever);
}

}  // namespace
}  // namespace btr
