// Unit tests for topology, routing, and the network runtime.

#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/net/routing.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace btr {
namespace {

struct TestPayload : Payload {
  int value = 0;
};

TEST(Topology, SharedBusConnectsEverything) {
  Topology t = Topology::SharedBus(5, 1'000'000, Microseconds(1));
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.Neighbors(NodeId(0)).size(), 4u);
}

TEST(Topology, RingHasTwoNeighbors) {
  Topology t = Topology::Ring(6, 1'000'000, Microseconds(1));
  EXPECT_EQ(t.link_count(), 6u);
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(t.Neighbors(NodeId(i)).size(), 2u);
  }
  EXPECT_TRUE(t.Validate().ok());
}

TEST(Topology, MeshIsFullyConnected) {
  Topology t = Topology::Mesh(4, 1'000'000, Microseconds(1));
  EXPECT_EQ(t.link_count(), 6u);  // C(4,2)
  EXPECT_EQ(t.Neighbors(NodeId(2)).size(), 3u);
}

TEST(Topology, DualBusGatewaysBridge) {
  Topology t = Topology::DualBus(6, 3, 1'000'000, Microseconds(1));
  EXPECT_TRUE(t.Validate().ok());
  // Gateways (node 2 and node 3) sit on both buses.
  EXPECT_EQ(t.LinksAt(NodeId(2)).size(), 2u);
  EXPECT_EQ(t.LinksAt(NodeId(3)).size(), 2u);
  EXPECT_EQ(t.LinksAt(NodeId(0)).size(), 1u);
}

TEST(Topology, ValidateRejectsIsolatedNode) {
  Topology t;
  t.AddNodes(3);
  t.AddLink({NodeId(0), NodeId(1)}, 1000, 0);
  EXPECT_FALSE(t.Validate().ok());
}

TEST(Routing, DirectRouteOnSharedBus) {
  Topology t = Topology::SharedBus(4, 1'000'000, Microseconds(1));
  RoutingTable routes(t);
  EXPECT_EQ(routes.HopCount(NodeId(0), NodeId(3)), 1u);
  EXPECT_TRUE(routes.Reachable(NodeId(1), NodeId(2)));
}

TEST(Routing, MultiHopOnRing) {
  Topology t = Topology::Ring(6, 1'000'000, Microseconds(1));
  RoutingTable routes(t);
  // 0 -> 3 needs 3 hops either way around the ring.
  EXPECT_EQ(routes.HopCount(NodeId(0), NodeId(3)), 3u);
  const Route& r = routes.RouteBetween(NodeId(0), NodeId(3));
  EXPECT_EQ(r.front().sender, NodeId(0));
  EXPECT_EQ(r.back().receiver, NodeId(3));
  // Hops chain: receiver of hop i is sender of hop i+1.
  for (size_t i = 0; i + 1 < r.size(); ++i) {
    EXPECT_EQ(r[i].receiver, r[i + 1].sender);
  }
}

TEST(Routing, ExcludedRelayForcesDetour) {
  Topology t = Topology::Ring(6, 1'000'000, Microseconds(1));
  RoutingTable normal(t);
  // Route 0->2 normally goes through 1.
  EXPECT_TRUE(normal.RouteUsesRelay(NodeId(0), NodeId(2), NodeId(1)));
  RoutingTable detour(t, {NodeId(1)});
  EXPECT_TRUE(detour.Reachable(NodeId(0), NodeId(2)));
  EXPECT_FALSE(detour.RouteUsesRelay(NodeId(0), NodeId(2), NodeId(1)));
  EXPECT_EQ(detour.HopCount(NodeId(0), NodeId(2)), 4u);  // the long way round
}

TEST(Routing, ExcludedEndpointStillReachable) {
  Topology t = Topology::Ring(4, 1'000'000, Microseconds(1));
  RoutingTable routes(t, {NodeId(2)});
  // 2 is excluded as a relay but can still terminate routes.
  EXPECT_TRUE(routes.Reachable(NodeId(1), NodeId(2)));
  EXPECT_TRUE(routes.Reachable(NodeId(3), NodeId(2)));
}

TEST(Routing, PathPropagationSums) {
  Topology t = Topology::Ring(6, 1'000'000, Microseconds(7));
  RoutingTable routes(t);
  EXPECT_EQ(routes.PathPropagation(NodeId(0), NodeId(3)), 3 * Microseconds(7));
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : topo_(Topology::SharedBus(4, 8'000'000, Microseconds(2))),
        sim_(1),
        net_(&sim_, &topo_, NetworkConfig{}) {}

  Topology topo_;
  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversPayloadToReceiver) {
  int received = 0;
  net_.SetReceiver(NodeId(1), [&](const Packet& p) {
    auto payload = std::dynamic_pointer_cast<const TestPayload>(p.payload);
    ASSERT_NE(payload, nullptr);
    EXPECT_EQ(payload->value, 7);
    EXPECT_EQ(p.src, NodeId(0));
    ++received;
  });
  auto payload = std::make_shared<TestPayload>();
  payload->value = 7;
  net_.Send(NodeId(0), NodeId(1), 100, TrafficClass::kForeground, payload);
  sim_.RunToCompletion();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net_.stats().packets_delivered, 1u);
}

TEST_F(NetworkTest, SerializationDelayMatchesBandwidthShare) {
  // 8 Mbps bus, 4 endpoints -> 2 Mbps per sender, 70% foreground -> 1.4 Mbps.
  SimTime delivered_at = -1;
  net_.SetReceiver(NodeId(1), [&](const Packet& p) { delivered_at = p.delivered_at; });
  net_.Send(NodeId(0), NodeId(1), 1400, TrafficClass::kForeground,
            std::make_shared<TestPayload>());
  sim_.RunToCompletion();
  // 1400 bytes * 8 / 1.4 Mbps = 8 ms, plus 2 us propagation.
  EXPECT_NEAR(static_cast<double>(delivered_at), 8e6 + 2e3, 1e4);
}

TEST_F(NetworkTest, GuardianSerializesSameSenderSameClass) {
  std::vector<SimTime> arrivals;
  net_.SetReceiver(NodeId(1), [&](const Packet& p) { arrivals.push_back(p.delivered_at); });
  for (int i = 0; i < 3; ++i) {
    net_.Send(NodeId(0), NodeId(1), 1400, TrafficClass::kForeground,
              std::make_shared<TestPayload>());
  }
  sim_.RunToCompletion();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each takes ~8ms of serialization; arrivals are spaced accordingly.
  EXPECT_NEAR(static_cast<double>(arrivals[1] - arrivals[0]), 8e6, 1e4);
  EXPECT_NEAR(static_cast<double>(arrivals[2] - arrivals[1]), 8e6, 1e4);
}

TEST_F(NetworkTest, ClassesDoNotBlockEachOther) {
  SimTime evidence_arrival = -1;
  net_.SetReceiver(NodeId(1), [&](const Packet& p) {
    if (p.cls == TrafficClass::kEvidence) {
      evidence_arrival = p.delivered_at;
    }
  });
  // Saturate the foreground guardian first.
  for (int i = 0; i < 10; ++i) {
    net_.Send(NodeId(0), NodeId(1), 1400, TrafficClass::kForeground,
              std::make_shared<TestPayload>());
  }
  net_.Send(NodeId(0), NodeId(1), 150, TrafficClass::kEvidence,
            std::make_shared<TestPayload>());
  sim_.RunToCompletion();
  // Evidence rides its own reserved slice: 150B * 8 / (2 Mbps * 0.15) = 4 ms.
  EXPECT_GE(evidence_arrival, 0);
  EXPECT_LT(evidence_arrival, Milliseconds(6));
}

TEST_F(NetworkTest, BabblerOnlyHurtsItself) {
  // Node 0 floods; node 2's traffic to node 3 is unaffected because the MAC
  // allocation is static per sender.
  SimTime honest_arrival = -1;
  net_.SetReceiver(NodeId(3), [&](const Packet& p) { honest_arrival = p.delivered_at; });
  net_.SetReceiver(NodeId(1), [](const Packet&) {});
  for (int i = 0; i < 200; ++i) {
    net_.Send(NodeId(0), NodeId(1), 1400, TrafficClass::kForeground,
              std::make_shared<TestPayload>());
  }
  net_.Send(NodeId(2), NodeId(3), 1400, TrafficClass::kForeground,
            std::make_shared<TestPayload>());
  sim_.RunToCompletion();
  EXPECT_NEAR(static_cast<double>(honest_arrival), 8e6 + 2e3, 1e4);
  EXPECT_GT(net_.stats().packets_dropped_backlog, 0u);  // babbler's own queue
}

TEST_F(NetworkTest, DownNodeDoesNotReceive) {
  int received = 0;
  net_.SetReceiver(NodeId(1), [&](const Packet&) { ++received; });
  net_.SetNodeDown(NodeId(1), true);
  net_.Send(NodeId(0), NodeId(1), 100, TrafficClass::kForeground,
            std::make_shared<TestPayload>());
  sim_.RunToCompletion();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net_.stats().packets_dropped_down, 1u);
}

TEST_F(NetworkTest, LoopbackIsFree) {
  SimTime arrival = -1;
  net_.SetReceiver(NodeId(0), [&](const Packet& p) { arrival = p.delivered_at; });
  net_.Send(NodeId(0), NodeId(0), 100000, TrafficClass::kForeground,
            std::make_shared<TestPayload>());
  sim_.RunToCompletion();
  EXPECT_EQ(arrival, 0);
  EXPECT_EQ(net_.stats().total_link_bytes, 0u);
}

TEST(NetworkMultiHop, RelayForwardsAndDownRelayDrops) {
  Topology topo = Topology::Ring(4, 8'000'000, Microseconds(2));
  Simulator sim(1);
  Network net(&sim, &topo, NetworkConfig{});
  int received = 0;
  net.SetReceiver(NodeId(2), [&](const Packet&) { ++received; });

  net.Send(NodeId(0), NodeId(2), 100, TrafficClass::kForeground,
           std::make_shared<TestPayload>());
  sim.RunToCompletion();
  EXPECT_EQ(received, 1);

  // Now take the relay down; the packet must be dropped mid-route.
  auto routing = std::make_shared<RoutingTable>(topo);
  const Route& r = routing->RouteBetween(NodeId(0), NodeId(2));
  ASSERT_EQ(r.size(), 2u);
  net.SetNodeDown(r[0].receiver, true);
  net.Send(NodeId(0), NodeId(2), 100, TrafficClass::kForeground,
           std::make_shared<TestPayload>());
  sim.RunToCompletion();
  EXPECT_EQ(received, 1);
  EXPECT_GE(net.stats().packets_dropped_down, 1u);
}

TEST(NetworkMultiHop, RelayDropModelsByzantineGateway) {
  Topology topo = Topology::Ring(4, 8'000'000, Microseconds(2));
  Simulator sim(1);
  Network net(&sim, &topo, NetworkConfig{});
  int received = 0;
  int relay_received = 0;
  net.SetReceiver(NodeId(2), [&](const Packet&) { ++received; });
  net.SetReceiver(NodeId(1), [&](const Packet&) { ++relay_received; });

  auto routing = std::make_shared<RoutingTable>(topo);
  const NodeId relay = routing->RouteBetween(NodeId(0), NodeId(2))[0].receiver;
  net.SetRelayDrop(relay, true);
  // Relayed traffic dies...
  net.Send(NodeId(0), NodeId(2), 100, TrafficClass::kForeground,
           std::make_shared<TestPayload>());
  // ...but traffic addressed *to* the Byzantine relay still arrives.
  net.Send(NodeId(0), relay, 100, TrafficClass::kForeground, std::make_shared<TestPayload>());
  sim.RunToCompletion();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(relay_received, 1);
}

TEST(NetworkLoss, LossyLinkDropsSomePackets) {
  Topology topo = Topology::SharedBus(2, 8'000'000, Microseconds(1));
  Simulator sim(7);
  NetworkConfig config;
  config.loss_probability = 0.5;
  Network net(&sim, &topo, config);
  int received = 0;
  net.SetReceiver(NodeId(1), [&](const Packet&) { ++received; });
  for (int i = 0; i < 200; ++i) {
    net.Send(NodeId(0), NodeId(1), 10, TrafficClass::kForeground,
             std::make_shared<TestPayload>());
  }
  sim.RunToCompletion();
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(received + static_cast<int>(net.stats().packets_dropped_loss), 200);
}

TEST(NetworkRouting, UnreachableDestinationCounts) {
  Topology topo;
  topo.AddNodes(3);
  topo.AddLink({NodeId(0), NodeId(1)}, 1'000'000, 0);
  topo.AddLink({NodeId(1), NodeId(2)}, 1'000'000, 0);
  Simulator sim(1);
  Network net(&sim, &topo, NetworkConfig{});
  // Exclude the only relay: 0 cannot reach 2.
  net.SetRouting(std::make_shared<RoutingTable>(topo, std::vector<NodeId>{NodeId(1)}));
  const MessageId id = net.Send(NodeId(0), NodeId(2), 10, TrafficClass::kForeground,
                                std::make_shared<TestPayload>());
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(net.stats().packets_dropped_unreachable, 1u);
}

}  // namespace
}  // namespace btr
