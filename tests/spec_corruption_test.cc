// Corruption sweep for the .btrx spec parser: specs are operator-supplied
// files, so a corrupted or adversarial spec must fail with a clean Status
// carrying a line number — never crash, never half-parse. Runs under the
// ASan+UBSan CI job like the other parser robustness suites.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/spec/experiment_spec.h"

namespace btr {
namespace {

const char kValid[] =
    "BTRX 1\n"
    "NAME sweep_victim\n"
    "SCENARIO inline nodes=3 period-us=10000\n"
    "LINK name=bus nodes=0,1,2 bw-bps=10000000 prop-us=2\n"
    "TASK name=src kind=source wcet-us=50 crit=high node=0\n"
    "TASK name=ctl kind=compute wcet-us=200 crit=high state=256\n"
    "TASK name=act kind=sink wcet-us=50 crit=high node=2 deadline-us=8000\n"
    "FLOW from=src to=ctl bytes=64\n"
    "FLOW from=ctl to=act bytes=32\n"
    "CONFIG f=1 recovery-us=500000 seed=9\n"
    "SWEEP seed 1 2\n"
    "PHASE periods=50\n"
    "FAULT node=1 at-us=100000 behavior=omission until-us=200000\n"
    "EDIT at-us=300000 kind=task-reweight name=ctl crit=low\n"
    "END\n";

void ExpectCleanError(const std::string& text, const char* what) {
  auto parsed = ParseExperimentSpec(text);
  EXPECT_FALSE(parsed.ok()) << what << ": corruption was accepted";
  if (!parsed.ok()) {
    EXPECT_NE(parsed.status().message().find("line "), std::string::npos)
        << what << ": error lacks a line number: " << parsed.status().ToString();
  }
}

TEST(SpecCorruption, ValidBaselineParses) {
  auto parsed = ParseExperimentSpec(kValid);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeExperimentSpec(*parsed), kValid);
}

// Truncation at every line boundary (and an unterminated tail) must fail
// cleanly — a partially transferred spec can never half-run.
TEST(SpecCorruption, TruncationAtEveryLineBoundary) {
  const std::string text(kValid);
  size_t pos = 0;
  while ((pos = text.find('\n', pos)) != std::string::npos) {
    ++pos;
    if (pos == text.size()) {
      break;  // full text
    }
    ExpectCleanError(text.substr(0, pos), "line-boundary truncation");
  }
  // Unterminated final line.
  ExpectCleanError(text.substr(0, text.size() - 1), "missing final newline");
  ExpectCleanError("", "empty file");
  ExpectCleanError("BTRX 1\n", "header only");
}

TEST(SpecCorruption, UnknownRecordKinds) {
  ExpectCleanError(std::string("FOO bar\n") + kValid, "leading junk record");
  std::string mid(kValid);
  mid.insert(mid.find("CONFIG"), "GARBAGE x=1\n");
  ExpectCleanError(mid, "junk record before CONFIG");
  std::string tail(kValid);
  tail += "EXTRA after=end\n";
  ExpectCleanError(tail, "record after END");
}

TEST(SpecCorruption, HeaderAndStructure) {
  std::string v2(kValid);
  v2.replace(v2.find("BTRX 1"), 6, "BTRX 2");
  ExpectCleanError(v2, "unsupported version");
  std::string no_end(kValid);
  no_end.erase(no_end.find("END\n"));
  ExpectCleanError(no_end, "missing END");
  std::string two_names(kValid);
  two_names.insert(two_names.find("SCENARIO"), "NAME again\n");
  ExpectCleanError(two_names, "duplicate NAME");
  std::string bad_order(kValid);
  // SWEEP after PHASE is out of section order.
  bad_order.insert(bad_order.find("END"), "SWEEP f 1 2\n");
  ExpectCleanError(bad_order, "sweep after phases");
}

struct Replacement {
  const char* what;
  const char* from;
  const char* to;
};

TEST(SpecCorruption, ForgedCountsAndOutOfRangeRefs) {
  const Replacement cases[] = {
      {"zero nodes", "SCENARIO inline nodes=3", "SCENARIO inline nodes=0"},
      {"absurd node count", "SCENARIO inline nodes=3", "SCENARIO inline nodes=200000000000"},
      {"link endpoint out of range", "nodes=0,1,2 bw-bps", "nodes=0,1,7 bw-bps"},
      {"duplicate link endpoint", "nodes=0,1,2 bw-bps", "nodes=0,1,1 bw-bps"},
      {"single-endpoint link", "nodes=0,1,2 bw-bps", "nodes=0 bw-bps"},
      {"pinned node out of range", "crit=high node=0", "crit=high node=9"},
      {"unknown flow producer", "FLOW from=src", "FLOW from=ghost"},
      {"unknown flow consumer", "from=ctl to=act", "from=ctl to=ghost"},
      {"fault node out of range", "FAULT node=1", "FAULT node=77"},
      {"zero periods", "PHASE periods=50", "PHASE periods=0"},
      {"fault heals before it manifests", "until-us=200000", "until-us=100000"},
      {"unknown behavior", "behavior=omission", "behavior=gremlins"},
      {"unknown criticality", "crit=low", "crit=purple"},
      {"unknown sweep axis", "SWEEP seed 1 2", "SWEEP moon 1 2"},
      {"empty sweep", "SWEEP seed 1 2", "SWEEP seed"},
      {"sweep f out of range", "SWEEP seed 1 2", "SWEEP f 64"},
      {"sweep recovery-us zero", "SWEEP seed 1 2", "SWEEP recovery-us 0"},
      {"sweep nodes on inline scenario", "SWEEP seed 1 2", "SWEEP nodes 2"},
      {"non-canonical integer", "seed=9", "seed=09"},
      {"negative integer", "at-us=100000 behavior", "at-us=-1 behavior"},
      {"unknown key", "CONFIG f=1", "CONFIG hyperdrive=1 f=1"},
      {"duplicate key", "CONFIG f=1", "CONFIG f=1 f=1"},
      {"state on a sink", "node=2 deadline-us=8000", "node=2 state=4 deadline-us=8000"},
      {"deadline on a source", "crit=high node=0", "crit=high node=0 deadline-us=10"},
      {"delay on an omission fault", "behavior=omission until-us=200000",
       "behavior=omission delay-us=5"},
      {"unknown edit kind", "kind=task-reweight name=ctl crit=low",
       "kind=task-overclock name=ctl crit=low"},
      {"chan on a reweight edit", "kind=task-reweight name=ctl crit=low",
       "kind=task-reweight name=ctl crit=low chan=a:b:1"},
  };
  for (const Replacement& c : cases) {
    std::string text(kValid);
    const size_t at = text.find(c.from);
    ASSERT_NE(at, std::string::npos) << c.what;
    text.replace(at, std::string(c.from).size(), c.to);
    ExpectCleanError(text, c.what);
  }
}

TEST(SpecCorruption, MismatchedEditBatchTimes) {
  std::string text(kValid);
  text.insert(text.find("END"), "EDIT at-us=999999 kind=task-remove name=ctl\n");
  ExpectCleanError(text, "two edit times in one phase");
}

// Every single-byte mutation either parses (the flip landed in a value)
// or fails with a clean Status — never crashes, never trips ASan/UBSan.
TEST(SpecCorruption, ByteFlipSweepNeverCrashes) {
  const std::string base(kValid);
  const char flips[] = {'\0', ' ', '\n', '~', 'Z', '0'};
  size_t parsed_ok = 0;
  size_t rejected = 0;
  for (size_t i = 0; i < base.size(); ++i) {
    for (char flip : flips) {
      if (base[i] == flip) {
        continue;
      }
      std::string text = base;
      text[i] = flip;
      auto result = ParseExperimentSpec(text);
      if (result.ok()) {
        ++parsed_ok;
      } else {
        ++rejected;
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
  // The strict field grammar rejects the overwhelming majority of flips.
  EXPECT_GT(rejected, parsed_ok);
}

// Random garbage and pathological inputs.
TEST(SpecCorruption, PathologicalInputs) {
  ExpectCleanError("\n\n\n", "only blank lines");
  ExpectCleanError("# just a comment\n", "only a comment");
  ExpectCleanError(std::string(1 << 16, 'A') + "\n", "one huge line");
  ExpectCleanError("BTRX 1\nNAME " + std::string(1000, 'a') + "\n", "oversized name");
  std::string binary;
  for (int i = 0; i < 256; ++i) {
    binary.push_back(static_cast<char>(i));
  }
  binary += '\n';
  ExpectCleanError(binary, "binary garbage");
}

}  // namespace
}  // namespace btr
