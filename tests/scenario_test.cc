// The churn/mobility/lossy-link scenario family, end to end:
//
//   * SCENARIO/LINK radio keys (loss-pm= / duty-on-us= / duty-period-us=)
//     round-trip canonically and reject malformed combinations;
//   * the convoy-mobile and lossy-mesh generators apply per-link dynamics
//     where (and only where) the radio lives;
//   * nearest-covered fallback: Strategy::LookupNearestCovered and
//     StrategyIndex::FindNearestCovered pick the largest planned subset
//     with the lexicographic-first tie-break;
//   * a beyond-f run completes on the nearest covered mode and the report's
//     degradation block (coverage < 1) distinguishes it from an
//     exactly-covered run;
//   * duty-cycled links drop by departure time alone — a heal landing in
//     the off-phase cannot resurrect the radio early;
//   * per-link loss honors the shard-invariance contract.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/btr_system.h"
#include "src/core/plan.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"
#include "src/spec/experiment_runner.h"
#include "src/spec/experiment_spec.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

// --- Spec surface -----------------------------------------------------------

const char kConvoyMobileSpec[] =
    "BTRX 1\n"
    "NAME mobile\n"
    "SCENARIO convoy-mobile nodes=8 loss-pm=20 duty-on-us=18000 duty-period-us=20000\n"
    "CONFIG f=1 recovery-us=500000 seed=2\n"
    "PHASE periods=50\n"
    "END\n";

const char kInlineRadioSpec[] =
    "BTRX 1\n"
    "NAME inline_radio\n"
    "SCENARIO inline nodes=3 period-us=10000\n"
    "LINK name=wire nodes=0,1 bw-bps=10000000 prop-us=2\n"
    "LINK name=radio nodes=1,2 bw-bps=5000000 prop-us=20 loss-pm=5 duty-on-us=900 duty-period-us=1000\n"
    "TASK name=src kind=source wcet-us=50 crit=high node=0\n"
    "TASK name=ctl kind=compute wcet-us=200 crit=high state=256\n"
    "TASK name=act kind=sink wcet-us=50 crit=high node=2 deadline-us=8000\n"
    "FLOW from=src to=ctl bytes=64\n"
    "FLOW from=ctl to=act bytes=32\n"
    "CONFIG f=1 recovery-us=500000 seed=9\n"
    "PHASE periods=50\n"
    "END\n";

TEST(ScenarioSpec, RadioAttrsRoundTripCanonically) {
  auto spec = ParseExperimentSpec(kConvoyMobileSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(SerializeExperimentSpec(*spec), kConvoyMobileSpec);
  EXPECT_EQ(spec->scenario.kind, SpecScenario::Kind::kConvoyMobile);
  EXPECT_EQ(spec->scenario.loss_pm, 20u);
  EXPECT_EQ(spec->scenario.duty_on, Microseconds(18000));
  EXPECT_EQ(spec->scenario.duty_period, Microseconds(20000));
}

TEST(ScenarioSpec, InlineLinkRadioAttrsRoundTrip) {
  auto spec = ParseExperimentSpec(kInlineRadioSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(SerializeExperimentSpec(*spec), kInlineRadioSpec);
  ASSERT_EQ(spec->scenario.links.size(), 2u);
  EXPECT_EQ(spec->scenario.links[0].loss_pm, 0u);
  EXPECT_EQ(spec->scenario.links[0].duty_period, 0);
  EXPECT_EQ(spec->scenario.links[1].loss_pm, 5u);
  EXPECT_EQ(spec->scenario.links[1].duty_on, Microseconds(900));
  EXPECT_EQ(spec->scenario.links[1].duty_period, Microseconds(1000));
}

void ExpectRejected(const std::string& text, const char* needle) {
  auto parsed = ParseExperimentSpec(text);
  ASSERT_FALSE(parsed.ok()) << "accepted: " << needle;
  EXPECT_NE(parsed.status().message().find(needle), std::string::npos)
      << parsed.status().ToString();
}

TEST(ScenarioSpec, RadioAttrsRejectMalformedCombinations) {
  const std::string valid(kConvoyMobileSpec);
  auto mutate = [&](const std::string& from, const std::string& to) {
    std::string text = valid;
    const size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    text.replace(pos, from.size(), to);
    return text;
  };
  // Radio keys only exist on the radio scenario kinds.
  ExpectRejected(mutate("convoy-mobile nodes=8 loss-pm=20",
                        "avionics nodes=8 loss-pm=20"),
                 "unknown");
  // loss-pm=0 is spelled by omitting the key (canonical round-trip), and
  // 1000 per-mille would be certain loss.
  ExpectRejected(mutate("loss-pm=20", "loss-pm=0"), "loss-pm= must be in [1, 999]");
  ExpectRejected(mutate("loss-pm=20", "loss-pm=1000"), "loss-pm= must be in [1, 999]");
  // The duty keys come as a pair, and the on-window fits the period.
  ExpectRejected(mutate(" duty-period-us=20000", ""),
                 "duty-on-us= and duty-period-us= come as a pair");
  ExpectRejected(mutate("duty-on-us=18000", "duty-on-us=25000"),
                 "duty-on-us= must not exceed duty-period-us=");
}

// Every shipped example spec in examples/specs/ must parse and serialize
// canonically — these files are the documentation of record for the
// scenario family and double as CI smoke inputs.
TEST(ScenarioSpec, ShippedScenarioFamilySpecsParse) {
  for (const char* name : {"convoy_mobile", "lossy_mesh", "convoy_churn"}) {
    const std::string path =
        std::string(BTR_SOURCE_DIR) + "/examples/specs/" + name + ".btrx";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path << " is missing";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto spec = ParseExperimentSpec(buffer.str());
    ASSERT_TRUE(spec.ok()) << path << ": " << spec.status().ToString();
    // Canonical: serialization is a fixed point.
    const std::string canon = SerializeExperimentSpec(*spec);
    auto reparsed = ParseExperimentSpec(canon);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(SerializeExperimentSpec(*reparsed), canon) << path;
  }
}

// --- Generators -------------------------------------------------------------

TEST(ScenarioGenerators, ConvoyMobileLossesOnlyTheRadioRing) {
  RadioParams radio;
  radio.loss = 0.05;
  radio.duty_on = Milliseconds(18);
  radio.duty_period = Milliseconds(20);
  Scenario s = MakeConvoyMobileScenario(4, &radio);
  EXPECT_EQ(s.name, "convoy-mobile");
  ASSERT_TRUE(s.topology.Validate().ok());
  size_t v2v = 0;
  for (const LinkSpec& link : s.topology.links()) {
    if (link.name.rfind("v2v", 0) == 0) {
      ++v2v;
      EXPECT_DOUBLE_EQ(link.loss, 0.05) << link.name;
      EXPECT_EQ(link.duty_period, Milliseconds(20)) << link.name;
    } else {
      // Intra-vehicle wiring stays ideal.
      EXPECT_DOUBLE_EQ(link.loss, 0.0) << link.name;
      EXPECT_EQ(link.duty_period, 0) << link.name;
    }
  }
  EXPECT_EQ(v2v, 4u);  // ring of 4 vehicles
}

TEST(ScenarioGenerators, LossyMeshEveryHopIsRadio) {
  Scenario s = MakeLossyMeshScenario(9);
  EXPECT_EQ(s.name, "lossy-mesh");
  ASSERT_TRUE(s.topology.Validate().ok());
  EXPECT_EQ(s.topology.node_count(), 9u);
  EXPECT_EQ(s.topology.link_count(), 12u);  // 3x3 grid: 2*3*(3-1)
  for (const LinkSpec& link : s.topology.links()) {
    EXPECT_GT(link.loss, 0.0) << link.name;
  }
  // The mesh must be plannable as-is.
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(500);
  BtrSystem system(std::move(s), config);
  EXPECT_TRUE(system.Plan().ok());
}

TEST(ScenarioGenerators, NamedRegistryResolvesTheFamily) {
  RadioParams radio;
  radio.loss = 0.01;
  auto mobile = MakeNamedScenario("convoy-mobile", 8, 1, nullptr, &radio);
  ASSERT_TRUE(mobile.ok()) << mobile.status().ToString();
  EXPECT_EQ(mobile->name, "convoy-mobile");
  EXPECT_EQ(mobile->topology.node_count(), 8u);
  auto mesh = MakeNamedScenario("lossy-mesh", 9, 1);
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
  EXPECT_EQ(mesh->name, "lossy-mesh");
}

// --- Nearest-covered fallback ----------------------------------------------

TEST(NearestCovered, LargestSubsetWithLexicographicTieBreak) {
  Strategy strategy;
  strategy.Insert(Plan(FaultSet(), nullptr, PlanBody()));
  for (uint32_t n : {0u, 1u, 2u}) {
    strategy.Insert(Plan(FaultSet({NodeId(n)}), nullptr, PlanBody()));
  }
  strategy.Insert(Plan(FaultSet({NodeId(0), NodeId(2)}), nullptr, PlanBody()));
  strategy.Insert(Plan(FaultSet({NodeId(1), NodeId(2)}), nullptr, PlanBody()));
  const StrategyIndex index(strategy);

  // Exact hit degrades to nothing: identical to the O(1) lookup.
  const FaultSet planned({NodeId(0), NodeId(2)});
  EXPECT_EQ(strategy.LookupNearestCovered(planned), strategy.Lookup(planned));
  EXPECT_EQ(index.FindNearestCovered(planned), index.Find(planned));

  // Beyond f: {0,1,2} has two planned 2-subsets, {0,2} and {1,2}; the
  // lexicographically first of the same size wins, on both lookup paths.
  const FaultSet beyond({NodeId(0), NodeId(1), NodeId(2)});
  const Plan* nearest = strategy.LookupNearestCovered(beyond);
  ASSERT_NE(nearest, nullptr);
  EXPECT_EQ(nearest->faults, planned);
  EXPECT_EQ(index.FindNearestCovered(beyond), nearest);

  // Nothing planned overlaps: fall all the way back to the root mode.
  const FaultSet strangers({NodeId(7), NodeId(9)});
  const Plan* root = strategy.LookupNearestCovered(strangers);
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->faults.empty());
  EXPECT_EQ(index.FindNearestCovered(strangers), root);

  // An empty strategy has no mode to degrade to.
  Strategy empty;
  EXPECT_EQ(empty.LookupNearestCovered(beyond), nullptr);
}

// --- Beyond-f graceful degradation ------------------------------------------

// An f=1 strategy hit by two crashes: the second conviction pushes the
// observed fault set beyond every planned mode. The run must complete on
// the nearest covered mode, and the report's degradation block — coverage
// strictly below 1 — must distinguish it from an exactly-covered run.
TEST(Degradation, BeyondFRunCompletesOnNearestCoveredMode) {
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(500);
  config.seed = 5;

  BtrSystem system(MakeAvionicsScenario(6), config);
  ASSERT_TRUE(system.Plan().ok());
  FaultInjection first;
  first.node = NodeId(0);
  first.manifest_at = Milliseconds(300);
  first.behavior = FaultBehavior::kCrash;
  system.AddFault(first);
  FaultInjection second;
  second.node = NodeId(1);
  second.manifest_at = Milliseconds(700);
  second.behavior = FaultBehavior::kCrash;
  system.AddFault(second);

  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->degradation.active());
  EXPECT_GT(report->degradation.beyond_f_lookups, 0u);
  EXPECT_GT(report->degradation.degraded_time, 0);
  EXPECT_LT(report->degradation.coverage, 1.0);
  EXPECT_GE(report->degradation.coverage, 0.0);
  const std::string dump = SerializeRunReport(*report);
  EXPECT_NE(dump.find("degradation beyond_f="), std::string::npos) << dump;
}

TEST(Degradation, ExactlyCoveredRunReportsFullCoverage) {
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(500);
  config.seed = 5;

  BtrSystem system(MakeAvionicsScenario(6), config);
  ASSERT_TRUE(system.Plan().ok());
  FaultInjection crash;
  crash.node = NodeId(0);
  crash.manifest_at = Milliseconds(300);
  crash.behavior = FaultBehavior::kCrash;
  system.AddFault(crash);

  auto report = system.Run(150);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->degradation.active());
  EXPECT_EQ(report->degradation.beyond_f_lookups, 0u);
  EXPECT_DOUBLE_EQ(report->degradation.coverage, 1.0);
  // The degradation line is gated: a clean run's report must not carry it.
  EXPECT_EQ(SerializeRunReport(*report).find("degradation"), std::string::npos);
}

// The acceptance scenario, spec-driven end to end: a mobile-convoy churn
// script whose transient crash window lands beyond f (the crashed
// computer's silent sources drag its co-hosted I/O node into the blame
// set), run through the same RunExperiment path as `btrsim --spec`. The
// run must complete on the nearest covered mode, and the coverage metric
// must separate it from the exactly-covered control run of the identical
// scenario.
TEST(Degradation, ConvoyChurnSpecBeyondFCompletesWithReducedCoverage) {
  const char kScript[] =
      "BTRX 1\n"
      "NAME churny\n"
      "SCENARIO convoy-mobile nodes=8 loss-pm=1\n"
      "CONFIG f=1 recovery-us=800000 seed=1 dissem=gossip\n"
      "PHASE periods=200\n"
      "FAULT node=1 at-us=300000 behavior=crash until-us=700000\n"
      "END\n";
  auto spec = ParseExperimentSpec(kScript);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto report = RunExperiment(*spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->phases.size(), 1u);
  const RunReport& churn = report->phases[0];
  EXPECT_TRUE(churn.degradation.active());
  EXPECT_GT(churn.degradation.beyond_f_lookups, 0u);
  EXPECT_LT(churn.degradation.coverage, 1.0);
  // Completed on the nearest covered mode: every sink the degraded mode
  // still schedules is delivered correctly (the rest are shed, not lost).
  EXPECT_GT(churn.correctness.correct_instances, 0u);
  EXPECT_EQ(churn.correctness.incorrect_missing, 0u);

  auto control_spec = ParseExperimentSpec(kScript);
  ASSERT_TRUE(control_spec.ok());
  control_spec->phases[0].faults.clear();
  auto control = RunExperiment(*control_spec);
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  EXPECT_FALSE(control->phases[0].degradation.active());
  EXPECT_DOUBLE_EQ(control->phases[0].degradation.coverage, 1.0);
  EXPECT_GT(control->phases[0].correctness.correct_instances,
            churn.correctness.correct_instances);
}

// --- Duty cycling -----------------------------------------------------------

struct DutyPayload : Payload {};

// The transmit window is a pure function of the departure timestamp. A
// node that goes down and heals inside the off-phase gets no special
// treatment: its first send after the heal still falls in the off-window
// and is dropped at the sender. Only the next on-window carries traffic —
// a heal cannot resurrect the radio early.
TEST(DutyCycle, HealInsideOffPhaseCannotReopenTheWindow) {
  Topology topo = Topology::SharedBus(2, 8'000'000, Microseconds(1));
  // On for the first 1 ms of every 10 ms period.
  topo.SetLinkDynamics(LinkId(0), 0.0, Milliseconds(1), Milliseconds(10));
  ASSERT_TRUE(topo.Validate().ok());
  Simulator sim(1);
  Network net(&sim, &topo, NetworkConfig{});
  int received = 0;
  net.SetReceiver(NodeId(1), [&](const Packet&) { ++received; });

  // t = 0: inside the on-window — delivered.
  net.Send(NodeId(0), NodeId(1), 100, TrafficClass::kForeground,
           std::make_shared<DutyPayload>());
  // t = 2 ms: the sender "crashes" (transient fault manifests).
  sim.At(Milliseconds(2), [&] { net.SetNodeDown(NodeId(0), true); });
  // t = 15 ms: the fault heals (`until`) in the middle of the off-phase
  // [11 ms, 20 ms). The radio must stay dark.
  sim.At(Milliseconds(15), [&] {
    net.SetNodeDown(NodeId(0), false);
    net.Send(NodeId(0), NodeId(1), 100, TrafficClass::kForeground,
             std::make_shared<DutyPayload>());
  });
  // t = 20 ms: the next on-window opens — traffic flows again.
  sim.At(Milliseconds(20), [&] {
    net.Send(NodeId(0), NodeId(1), 100, TrafficClass::kForeground,
             std::make_shared<DutyPayload>());
  });
  sim.RunToCompletion();

  EXPECT_EQ(received, 2);
  EXPECT_EQ(net.stats().packets_dropped_duty, 1u);
  EXPECT_EQ(net.stats().packets_dropped_loss, 0u);
}

// System-level: a duty-cycled convoy with a transient crash whose heal
// lands in an off-phase still completes, counts its duty drops, and stays
// deterministic across repeated runs.
TEST(DutyCycle, ConvoyWithDutyCycledRadioIsDeterministic) {
  RadioParams radio;
  radio.loss = 0.0;
  // 4 ms on out of every 7 ms: incommensurate with the workload cadence,
  // so real departures land in the off-phase (a 20 ms period aligned with
  // the 10 ms dispatch grid would never drop anything).
  radio.duty_on = Milliseconds(4);
  radio.duty_period = Milliseconds(7);
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(1000);
  config.seed = 4;

  auto run = [&] {
    BtrSystem system(MakeConvoyMobileScenario(4, &radio), config);
    EXPECT_TRUE(system.Plan().ok());
    FaultInjection transient;
    transient.node = NodeId(3);
    transient.manifest_at = Milliseconds(250);
    // Heals at 650 ms: 650 % 7 = 6 ms, inside the 3 ms off-phase.
    transient.until = Milliseconds(650);
    transient.behavior = FaultBehavior::kCrash;
    system.AddFault(transient);
    auto report = system.Run(100);
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report->network.packets_dropped_duty, 0u);
    return SerializeRunReport(*report);
  };
  EXPECT_EQ(run(), run());
}

// --- Per-link loss under sharding -------------------------------------------

// The shard-invariance contract extends to per-link loss: draws are keyed
// by (seed, link, packet id, hop) — never by shard-local RNG state — so a
// mobile convoy's report is byte-identical at every shard count.
TEST(ScenarioShardInvariance, PerLinkLossByteIdenticalAcrossShardCounts) {
  RadioParams radio;
  radio.loss = 0.05;
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(1000);
  config.seed = 6;

  setenv("BTR_SHARD_EXEC", "threads", 1);
  std::string baseline;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    BtrSystem system(MakeConvoyMobileScenario(4, &radio), config);
    system.set_shards(shards);
    ASSERT_TRUE(system.Plan().ok());
    auto report = system.Run(80);
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report->network.packets_dropped_loss, 0u);
    const std::string dump = SerializeRunReport(*report);
    if (shards == 1) {
      baseline = dump;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(dump, baseline) << "per-link lossy report diverged at shards=" << shards;
    }
  }
  unsetenv("BTR_SHARD_EXEC");
}

}  // namespace
}  // namespace btr
