// Unit tests for the PBFT/ZZ/self-stabilization/unreplicated baselines.

#include <gtest/gtest.h>

#include <set>

#include "src/baselines/bft_smr.h"
#include "src/baselines/selfstab.h"
#include "src/baselines/unreplicated.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

Scenario BigAvionics() { return MakeAvionicsScenario(10); }

TEST(BftBaseline, PicksCorrectReplicaCount) {
  Scenario s = BigAvionics();
  BftConfig pbft;
  pbft.f = 1;
  pbft.mode = BftMode::kPbft;
  EXPECT_EQ(BftBaseline(&s, pbft).replica_nodes().size(), 4u);
  BftConfig zz;
  zz.f = 1;
  zz.mode = BftMode::kZz;
  EXPECT_EQ(BftBaseline(&s, zz).replica_nodes().size(), 3u);
}

TEST(BftBaseline, PrefersNonPinnedNodes) {
  Scenario s = BigAvionics();
  BftConfig config;
  config.f = 1;
  BftBaseline baseline(&s, config);
  std::set<NodeId> pinned;
  for (const TaskSpec& t : s.workload.tasks()) {
    if (t.pinned_node.valid()) {
      pinned.insert(t.pinned_node);
    }
  }
  for (NodeId r : baseline.replica_nodes()) {
    EXPECT_EQ(pinned.count(r), 0u);
  }
}

TEST(BftBaseline, FaultFreePbftProducesCorrectOutputs) {
  Scenario s = BigAvionics();
  BftConfig config;
  config.f = 1;
  BftBaseline baseline(&s, config);
  auto report = baseline.Run(50, AdversarySpec{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->correct_outputs, 0u);
  EXPECT_EQ(report->wrong_outputs, 0u);
  EXPECT_EQ(report->view_changes, 0u);
  EXPECT_EQ(report->replicas_total, 4u);
}

TEST(BftBaseline, PbftMasksBackupCorruption) {
  Scenario s = BigAvionics();
  BftConfig config;
  config.f = 1;
  BftBaseline baseline(&s, config);
  AdversarySpec adversary;
  // Corrupt a non-primary replica (primary is replicas[0] in view 0).
  adversary.Add({baseline.replica_nodes()[2], 0, FaultBehavior::kValueCorruption, 0,
                 NodeId::Invalid(), 0});
  auto report = baseline.Run(50, adversary);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->wrong_outputs, 0u);
  EXPECT_GT(report->correct_outputs, 0u);
}

TEST(BftBaseline, PbftPrimaryFaultTriggersViewChange) {
  Scenario s = BigAvionics();
  BftConfig config;
  config.f = 1;
  BftBaseline baseline(&s, config);
  AdversarySpec adversary;
  adversary.Add({baseline.replica_nodes()[0], Milliseconds(100),
                 FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
  auto report = baseline.Run(50, adversary);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->view_changes, 0u);
  EXPECT_EQ(report->wrong_outputs, 0u);  // masked throughout
}

TEST(BftBaseline, PbftCostsScaleWithF) {
  Scenario s = MakeAvionicsScenario(16);
  BftConfig f1;
  f1.f = 1;
  BftConfig f2;
  f2.f = 2;
  auto r1 = BftBaseline(&s, f1).Run(30, AdversarySpec{});
  auto r2 = BftBaseline(&s, f2).Run(30, AdversarySpec{});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->cpu_per_period, r1->cpu_per_period);
  EXPECT_GT(r2->bytes_per_period, r1->bytes_per_period);
  EXPECT_EQ(r2->replicas_total, 7u);
}

TEST(BftBaseline, NotEnoughNodesRejected) {
  Scenario s = MakeScadaScenario(2);  // 4 nodes total
  BftConfig config;
  config.f = 2;  // needs 7
  auto report = BftBaseline(&s, config).Run(10, AdversarySpec{});
  EXPECT_FALSE(report.ok());
}

TEST(ZzBaseline, FaultFreeUsesOnlyFPlusOneExecutions) {
  Scenario s = BigAvionics();
  BftConfig pbft;
  pbft.f = 1;
  pbft.mode = BftMode::kPbft;
  BftConfig zz;
  zz.f = 1;
  zz.mode = BftMode::kZz;
  auto pbft_report = BftBaseline(&s, pbft).Run(50, AdversarySpec{});
  auto zz_report = BftBaseline(&s, zz).Run(50, AdversarySpec{});
  ASSERT_TRUE(pbft_report.ok());
  ASSERT_TRUE(zz_report.ok());
  EXPECT_EQ(zz_report->replicas_active, 2u);
  EXPECT_EQ(zz_report->wakeups, 0u);
  // ZZ's fault-free CPU is roughly (f+1)/(3f+1) of PBFT's.
  EXPECT_LT(zz_report->cpu_per_period, 0.7 * pbft_report->cpu_per_period);
  EXPECT_LT(zz_report->bytes_per_period, pbft_report->bytes_per_period);
}

TEST(ZzBaseline, MismatchWakesStandbysAndRecovers) {
  Scenario s = BigAvionics();
  BftConfig zz;
  zz.f = 1;
  zz.mode = BftMode::kZz;
  BftBaseline baseline(&s, zz);
  AdversarySpec adversary;
  adversary.Add({baseline.replica_nodes()[1], Milliseconds(100),
                 FaultBehavior::kValueCorruption, 0, NodeId::Invalid(), 0});
  auto report = baseline.Run(60, adversary);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->wakeups, 0u);
  EXPECT_EQ(report->wrong_outputs, 0u);  // majority masks after wakeup
  EXPECT_GT(report->correct_outputs, 0u);
}

TEST(SelfStab, FaultFreeRunsCorrectly) {
  Scenario s = BigAvionics();
  SelfStabConfig config;
  auto report = SelfStabBaseline(&s, config).Run(50, AdversarySpec{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->incorrect_outputs, 0u);
  EXPECT_TRUE(report->stabilized);
}

TEST(SelfStab, CrashEventuallyStabilizes) {
  Scenario s = BigAvionics();
  SelfStabConfig config;
  config.seed = 3;
  AdversarySpec adversary;
  // Crash a compute host (node 4+ are flight computers).
  adversary.Add({NodeId(5), Milliseconds(200), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
  auto report = SelfStabBaseline(&s, config).Run(400, adversary);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->stabilized);
  EXPECT_GT(report->recovery_time, 0);
}

TEST(SelfStab, CorruptionRecoveryIsSlowerThanCrash) {
  // Wrong values are only probabilistically detectable without replicas, so
  // corruption recovery stochastically dominates crash recovery.
  Scenario s = BigAvionics();
  double crash_total = 0.0;
  double corrupt_total = 0.0;
  int crash_n = 0;
  int corrupt_n = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SelfStabConfig config;
    config.seed = seed;
    config.detect_prob = 0.15;
    AdversarySpec crash;
    crash.Add({NodeId(5), Milliseconds(200), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
    AdversarySpec corrupt;
    corrupt.Add({NodeId(5), Milliseconds(200), FaultBehavior::kValueCorruption, 0,
                 NodeId::Invalid(), 0});
    auto r1 = SelfStabBaseline(&s, config).Run(600, crash);
    auto r2 = SelfStabBaseline(&s, config).Run(600, corrupt);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    if (r1->stabilized && r1->recovery_time >= 0) {
      crash_total += ToMillisF(r1->recovery_time);
      ++crash_n;
    }
    if (r2->stabilized && r2->recovery_time >= 0) {
      corrupt_total += ToMillisF(r2->recovery_time);
      ++corrupt_n;
    }
  }
  ASSERT_GT(crash_n, 0);
  if (corrupt_n > 0) {
    EXPECT_GE(corrupt_total / corrupt_n, crash_total / crash_n);
  }
}

TEST(Unreplicated, CostMatchesWorkload) {
  Scenario s = MakeScadaScenario();
  const UnreplicatedCost cost = ComputeUnreplicatedCost(s.workload);
  double wcet = 0.0;
  for (const TaskSpec& t : s.workload.tasks()) {
    wcet += static_cast<double>(t.wcet);
  }
  EXPECT_DOUBLE_EQ(cost.cpu_per_period, wcet);
  EXPECT_GT(cost.bytes_per_period, 0.0);
  EXPECT_EQ(cost.replicas, 1u);
}

}  // namespace
}  // namespace btr
