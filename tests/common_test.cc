// Unit tests for src/common: ids, rng, hashing, status, stats, tables, math.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/common/math_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table.h"
#include "src/common/types.h"

namespace btr {
namespace {

// --- types ---

TEST(Types, InvalidIdIsNotValid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_FALSE(NodeId::Invalid().valid());
}

TEST(Types, IdsCompareByValue) {
  EXPECT_EQ(NodeId(3), NodeId(3));
  EXPECT_NE(NodeId(3), NodeId(4));
  EXPECT_LT(NodeId(3), NodeId(4));
  EXPECT_LE(NodeId(3), NodeId(3));
  EXPECT_GT(NodeId(5), NodeId(4));
}

TEST(Types, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, TaskId>);
  static_assert(!std::is_same_v<LinkId, FlowId>);
  SUCCEED();
}

TEST(Types, IdsHashIntoUnorderedContainers) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId(1));
  set.insert(NodeId(1));
  set.insert(NodeId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Types, ToStringFormats) {
  EXPECT_EQ(ToString(NodeId(7)), "n7");
  EXPECT_EQ(ToString(TaskId(2)), "t2");
  EXPECT_EQ(ToString(NodeId()), "n<invalid>");
}

TEST(Types, DurationHelpers) {
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1000 * 1000);
  EXPECT_EQ(Seconds(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(ToSecondsF(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillisF(Milliseconds(5)), 5.0);
}

// --- rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyMatchesP) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextGaussian(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextExponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --- hash ---

TEST(Hash, DeterministicAndSpread) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Hash, HasherLengthPrefixing) {
  Hasher a;
  a.AddString("ab").AddString("c");
  Hasher b;
  b.AddString("a").AddString("bc");
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(Hash, HasherVectorsDiffer) {
  Hasher a;
  a.AddVector(std::vector<int>{1, 2, 3});
  Hasher b;
  b.AddVector(std::vector<int>{1, 2, 4});
  EXPECT_NE(a.Digest(), b.Digest());
}

// --- status ---

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::Infeasible("no gap");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.ToString(), "INFEASIBLE: no gap");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("x");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

// --- stats ---

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
  EXPECT_NEAR(s.Percentile(0.5), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(0.99), 99.01, 0.01);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
}

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_EQ(s.Percentile(0.5), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);
  h.Add(0.5);
  h.Add(9.9);
  h.Add(10.0);
  h.Add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.BucketValue(0), 1u);
  EXPECT_EQ(h.BucketValue(9), 1u);
  EXPECT_EQ(h.total(), 5u);
}

// --- table ---

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CellFormatters) {
  EXPECT_EQ(CellInt(42), "42");
  EXPECT_EQ(CellDouble(1.5, 1), "1.5");
  EXPECT_EQ(CellDuration(1500.0), "1.50 us");
  EXPECT_EQ(CellDuration(2.5e9), "2.500 s");
  EXPECT_EQ(CellBytes(2048), "2.0 KB");
  EXPECT_EQ(CellPercent(0.254), "25.4%");
}

// --- math ---

TEST(MathUtil, LcmAndGcd) {
  EXPECT_EQ(Lcm64(4, 6), 12);
  EXPECT_EQ(LcmAll({2, 3, 5}), 30);
  EXPECT_EQ(LcmAll({10, 20, 40}), 40);
  EXPECT_EQ(Gcd64(12, 18), 6);
}

TEST(MathUtil, CeilDivAndRoundUp) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(RoundUp(10, 4), 12);
  EXPECT_EQ(RoundUp(12, 4), 12);
}

}  // namespace
}  // namespace btr
