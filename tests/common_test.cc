// Unit tests for src/common: ids, rng, hashing, status, stats, tables,
// math, the thread pool's nested-use contract, and the data-plane
// containers (flat maps, packed keys, small callables, block pools).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/common/block_pool.h"
#include "src/common/flat_map.h"
#include "src/common/hash.h"
#include "src/common/inline_vec.h"
#include "src/common/math_util.h"
#include "src/common/packed_key.h"
#include "src/common/rng.h"
#include "src/common/small_fn.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"

namespace btr {
namespace {

// --- types ---

TEST(Types, InvalidIdIsNotValid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_FALSE(NodeId::Invalid().valid());
}

TEST(Types, IdsCompareByValue) {
  EXPECT_EQ(NodeId(3), NodeId(3));
  EXPECT_NE(NodeId(3), NodeId(4));
  EXPECT_LT(NodeId(3), NodeId(4));
  EXPECT_LE(NodeId(3), NodeId(3));
  EXPECT_GT(NodeId(5), NodeId(4));
}

TEST(Types, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, TaskId>);
  static_assert(!std::is_same_v<LinkId, FlowId>);
  SUCCEED();
}

TEST(Types, IdsHashIntoUnorderedContainers) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId(1));
  set.insert(NodeId(1));
  set.insert(NodeId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Types, ToStringFormats) {
  EXPECT_EQ(ToString(NodeId(7)), "n7");
  EXPECT_EQ(ToString(TaskId(2)), "t2");
  EXPECT_EQ(ToString(NodeId()), "n<invalid>");
}

TEST(Types, DurationHelpers) {
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1000 * 1000);
  EXPECT_EQ(Seconds(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(ToSecondsF(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillisF(Milliseconds(5)), 5.0);
}

// --- rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyMatchesP) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextGaussian(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextExponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --- hash ---

TEST(Hash, DeterministicAndSpread) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Hash, HasherLengthPrefixing) {
  Hasher a;
  a.AddString("ab").AddString("c");
  Hasher b;
  b.AddString("a").AddString("bc");
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(Hash, HasherVectorsDiffer) {
  Hasher a;
  a.AddVector(std::vector<int>{1, 2, 3});
  Hasher b;
  b.AddVector(std::vector<int>{1, 2, 4});
  EXPECT_NE(a.Digest(), b.Digest());
}

// --- status ---

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::Infeasible("no gap");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.ToString(), "INFEASIBLE: no gap");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("x");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

// --- stats ---

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
  EXPECT_NEAR(s.Percentile(0.5), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(0.99), 99.01, 0.01);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
}

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_EQ(s.Percentile(0.5), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);
  h.Add(0.5);
  h.Add(9.9);
  h.Add(10.0);
  h.Add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.BucketValue(0), 1u);
  EXPECT_EQ(h.BucketValue(9), 1u);
  EXPECT_EQ(h.total(), 5u);
}

// --- table ---

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CellFormatters) {
  EXPECT_EQ(CellInt(42), "42");
  EXPECT_EQ(CellDouble(1.5, 1), "1.5");
  EXPECT_EQ(CellDuration(1500.0), "1.50 us");
  EXPECT_EQ(CellDuration(2.5e9), "2.500 s");
  EXPECT_EQ(CellBytes(2048), "2.0 KB");
  EXPECT_EQ(CellPercent(0.254), "25.4%");
}

// --- math ---

TEST(MathUtil, LcmAndGcd) {
  EXPECT_EQ(Lcm64(4, 6), 12);
  EXPECT_EQ(LcmAll({2, 3, 5}), 30);
  EXPECT_EQ(LcmAll({10, 20, 40}), 40);
  EXPECT_EQ(Gcd64(12, 18), 6);
}

TEST(MathUtil, CeilDivAndRoundUp) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(RoundUp(10, 4), 12);
  EXPECT_EQ(RoundUp(12, 4), 12);
}

// --- packed keys ---

TEST(PackedKey, RoundTripsPeriodInLowBits) {
  EXPECT_EQ(PeriodOfPackedKey(PackIdPeriod(0, 0)), 0u);
  EXPECT_EQ(PeriodOfPackedKey(PackIdPeriod(123, 456)), 456u);
  EXPECT_EQ(PeriodOfPackedKey(PackTaskReplicaPeriod(9, 3, 777)), 777u);
  EXPECT_EQ(PeriodOfPackedKey(PackNodePairPeriod(1, 2, 31337)), 31337u);
}

TEST(PackedKey, DistinctTuplesDistinctKeysPerPacker) {
  // Distinctness is per packer: each container uses exactly one packing,
  // so only same-packer collisions would corrupt state.
  std::set<uint64_t> id_period;
  std::set<uint64_t> task_replica;
  std::set<uint64_t> node_pair;
  for (uint32_t id = 0; id < 8; ++id) {
    for (uint64_t p = 0; p < 8; ++p) {
      id_period.insert(PackIdPeriod(id, p));
      task_replica.insert(PackTaskReplicaPeriod(id, 1, p));
      task_replica.insert(PackTaskReplicaPeriod(id, 2, p));
      node_pair.insert(PackNodePairPeriod(id, id + 9, p));
    }
  }
  EXPECT_EQ(id_period.size(), 8u * 8);
  EXPECT_EQ(task_replica.size(), 2u * 8 * 8);
  EXPECT_EQ(node_pair.size(), 8u * 8);
}

TEST(PackedKey, FieldsDoNotOverlap) {
  EXPECT_NE(PackTaskReplicaPeriod(1, 0, 0), PackTaskReplicaPeriod(0, 1, 0));
  EXPECT_NE(PackTaskReplicaPeriod(0, 1, 0), PackTaskReplicaPeriod(0, 0, 1));
  EXPECT_NE(PackNodePairPeriod(1, 2, 3), PackNodePairPeriod(2, 1, 3));
}

// --- flat map / set ---

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap64<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.Emplace(42, 7));
  EXPECT_FALSE(m.Emplace(42, 9));  // emplace keeps the first value
  ASSERT_NE(m.Find(42), nullptr);
  EXPECT_EQ(*m.Find(42), 7);
  m.InsertOrAssign(42, 9);
  EXPECT_EQ(*m.Find(42), 9);
  m[43] = 1;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.Erase(42));
  EXPECT_FALSE(m.Erase(42));
  EXPECT_EQ(m.Find(42), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, RandomizedAgainstStdMap) {
  // Drive identical operation sequences against FlatMap64 and std::map and
  // require identical visible state throughout — this exercises growth,
  // collisions, and the backward-shift deletion.
  Rng rng(2024);
  FlatMap64<uint64_t> flat;
  std::map<uint64_t, uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    const uint64_t key = rng.NextBelow(512);  // small key space: collisions
    switch (rng.NextBelow(4)) {
      case 0:
        flat.InsertOrAssign(key, op);
        ref[key] = static_cast<uint64_t>(op);
        break;
      case 1: {
        const bool inserted = flat.Emplace(key, op);
        EXPECT_EQ(inserted, ref.emplace(key, op).second);
        break;
      }
      case 2:
        EXPECT_EQ(flat.Erase(key), ref.erase(key) > 0);
        break;
      default: {
        const uint64_t* found = flat.Find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Full content comparison at the end.
  size_t seen = 0;
  flat.ForEach([&](uint64_t key, const uint64_t& value) {
    ++seen;
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(it->second, value);
  });
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatMap, EraseIfMatchesReference) {
  Rng rng(99);
  FlatMap64<uint64_t> flat;
  std::map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t key = rng.Next() % 1024;
    flat.InsertOrAssign(key, key * 3);
    ref[key] = key * 3;
  }
  const auto stale = [](uint64_t key) { return key % 7 == 0; };
  flat.EraseIf([&](uint64_t key, const uint64_t&) { return stale(key); });
  std::erase_if(ref, [&](const auto& kv) { return stale(kv.first); });
  EXPECT_EQ(flat.size(), ref.size());
  for (const auto& [key, value] : ref) {
    ASSERT_NE(flat.Find(key), nullptr);
    EXPECT_EQ(*flat.Find(key), value);
  }
}

TEST(FlatSet, InsertContainsErase) {
  FlatSet64 s;
  EXPECT_TRUE(s.Insert(PackIdPeriod(3, 9)));
  EXPECT_FALSE(s.Insert(PackIdPeriod(3, 9)));
  EXPECT_TRUE(s.Contains(PackIdPeriod(3, 9)));
  EXPECT_FALSE(s.Contains(PackIdPeriod(3, 10)));
  s.EraseIf([](uint64_t key) { return PeriodOfPackedKey(key) < 10; });
  EXPECT_TRUE(s.empty());
}

TEST(FlatMap, HeldSharedPtrsReleasedOnErase) {
  FlatMap64<std::shared_ptr<int>> m;
  auto value = std::make_shared<int>(5);
  m.InsertOrAssign(1, value);
  EXPECT_EQ(value.use_count(), 2);
  m.Erase(1);
  EXPECT_EQ(value.use_count(), 1);
  m.InsertOrAssign(2, value);
  m.clear();
  EXPECT_EQ(value.use_count(), 1);
}

// --- small callable ---

TEST(SmallFn, InvokesInlineAndMovedCaptures) {
  int hits = 0;
  SmallFn<48> fn([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  SmallFn<48> moved = std::move(fn);
  moved();
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move): move contract
}

TEST(SmallFn, OversizedCaptureUsesHeapAndStillWorks) {
  struct Big {
    uint64_t data[16] = {};
  };
  Big big;
  big.data[15] = 11;
  uint64_t out = 0;
  SmallFn<48> fn([big, &out] { out = big.data[15]; });
  SmallFn<48> moved = std::move(fn);
  moved();
  EXPECT_EQ(out, 11u);
}

TEST(SmallFn, DestructionReleasesCaptures) {
  auto token = std::make_shared<int>(1);
  {
    SmallFn<48> fn([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
    fn.Reset();
    EXPECT_EQ(token.use_count(), 1);
  }
  {
    SmallFn<48> fn([token] { (void)*token; });
    SmallFn<48> other = std::move(fn);
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

// --- inline vector ---

TEST(InlineVec, StaysInlineUpToNThenSpills) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 4; ++i) {
    v.push_back(i);
  }
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  v.push_back(4);
  EXPECT_GT(v.capacity(), 4u);  // spilled to heap
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(v[i], i);
  }
}

TEST(InlineVec, CopyAndMoveBothModes) {
  InlineVec<std::shared_ptr<int>, 2> small;
  small.push_back(std::make_shared<int>(1));
  InlineVec<std::shared_ptr<int>, 2> copied = small;
  EXPECT_EQ(*copied[0], 1);
  EXPECT_EQ(small[0].use_count(), 2);
  InlineVec<std::shared_ptr<int>, 2> moved = std::move(copied);
  EXPECT_EQ(*moved[0], 1);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(copied.size(), 0u);  // NOLINT(bugprone-use-after-move): move contract

  InlineVec<std::shared_ptr<int>, 2> big;
  for (int i = 0; i < 6; ++i) {
    big.push_back(std::make_shared<int>(i));
  }
  InlineVec<std::shared_ptr<int>, 2> big_copy = big;
  InlineVec<std::shared_ptr<int>, 2> big_move = std::move(big);
  ASSERT_EQ(big_move.size(), 6u);
  ASSERT_EQ(big_copy.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(*big_move[i], i);
    EXPECT_EQ(*big_copy[i], i);
  }
}

TEST(InlineVec, ClearReleasesElements) {
  auto token = std::make_shared<int>(0);
  InlineVec<std::shared_ptr<int>, 2> v;
  v.push_back(token);
  v.push_back(token);
  v.push_back(token);  // spilled
  EXPECT_EQ(token.use_count(), 4);
  v.clear();
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_EQ(v.capacity(), 2u);  // heap returned, inline again
}

TEST(InlineVec, SortAndInitializerList) {
  InlineVec<int, 4> v = {3, 1, 2};
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
  InlineVec<int, 4> w;
  w.assign(v.begin(), v.end());
  EXPECT_EQ(w.size(), 3u);
}

// --- block pool ---

TEST(BlockPool, RecyclesBlocksBySizeClass) {
  auto pool = std::make_shared<BlockPool>();
  void* a = pool->Allocate(40);
  pool->Deallocate(a, 40);
  void* b = pool->Allocate(40);
  EXPECT_EQ(a, b);  // freelist hit, no new block
  EXPECT_EQ(pool->allocated_blocks(), 1u);
  void* c = pool->Allocate(400);  // different class
  EXPECT_NE(b, c);
  pool->Deallocate(b, 40);
  pool->Deallocate(c, 400);
  EXPECT_EQ(pool->allocated_blocks(), 2u);
}

TEST(BlockPool, MakePooledObjectsReuseStorage) {
  auto pool = std::make_shared<BlockPool>();
  struct Payload {
    uint64_t values[6] = {};
  };
  void* first_addr = nullptr;
  {
    auto p = MakePooled<Payload>(pool);
    p->values[0] = 9;
    first_addr = p.get();
  }
  // The block went back to the freelist; an identical allocation reuses it.
  auto q = MakePooled<Payload>(pool);
  EXPECT_EQ(static_cast<void*>(q.get()), first_addr);
  EXPECT_EQ(pool->allocated_blocks(), 1u);
}

TEST(BlockPool, PoolOutlivesItsObjects) {
  std::shared_ptr<int> survivor;
  {
    auto pool = std::make_shared<BlockPool>();
    survivor = MakePooled<int>(pool, 77);
  }
  // The arena handle inside the control block keeps the pool alive.
  EXPECT_EQ(*survivor, 77);
  survivor.reset();
}

// --- thread pool: nested use ---

TEST(ThreadPoolNested, OnWorkerThreadIsSetExactlyOnWorkers) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(2);
  std::atomic<int> on_worker{0};
  pool.ParallelFor(4, [&](size_t) {
    if (ThreadPool::OnWorkerThread()) {
      on_worker.fetch_add(1);
    }
  });
  EXPECT_EQ(on_worker.load(), 4);
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

// A batch submitted from a pool worker runs inline on that worker —
// enqueueing could starve forever when every worker is occupied by a
// long-running job (the sweep service's whole-experiment jobs). This test
// is exactly that worst case: both workers busy, each submitting nested
// batches; it must terminate.
TEST(ThreadPoolNested, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_jobs{0};
  pool.ParallelFor(2, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) {
      EXPECT_TRUE(ThreadPool::OnWorkerThread());
      inner_jobs.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_jobs.load(), 16);
}

TEST(ThreadPoolNested, DeeplyNestedDispatchStillCompletes) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(2, [&](size_t) {
    pool.ParallelFor(2, [&](size_t) {
      pool.ParallelFor(2, [&](size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 8);
}

// ReserveWorkers guarantees *idle* workers, not a worker-count bound:
// long-running occupants must not absorb the reservation. Two occupants
// park on every initial worker, then a reserved batch of two genuinely
// concurrent helpers must rendezvous with each other — impossible unless
// both run on (new) idle workers at the same time.
TEST(ThreadPoolNested, ReserveWorkersGuaranteesIdleWorkersUnderLoad) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release_occupants = false;

  std::atomic<size_t> occupants_running{0};
  ThreadPool::Ticket occupants = pool.Dispatch(pool.worker_count(), [&](size_t) {
    occupants_running.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release_occupants; });
  });
  while (occupants_running.load() < pool.worker_count()) {
    std::this_thread::yield();
  }

  // Pool fully occupied. Reserve two idle workers and run a barrier pair.
  pool.ReserveWorkers(2);
  std::atomic<int> arrived{0};
  ThreadPool::Ticket helpers = pool.Dispatch(2, [&](size_t) {
    arrived.fetch_add(1);
    while (arrived.load() < 2) {
      std::this_thread::yield();  // spins forever unless both run concurrently
    }
  });
  helpers.Wait();
  EXPECT_EQ(arrived.load(), 2);

  {
    std::lock_guard<std::mutex> lock(mu);
    release_occupants = true;
  }
  cv.notify_all();
  occupants.Wait();
}

}  // namespace
}  // namespace btr
