// Adversary model tests: the FaultBehavior name<->enum round trip that the
// CLI and the spec parser share, the transient-fault window semantics of
// AdversarySpec::ActiveOn, and a runtime check that a healed node stops
// drawing accusations.

#include <gtest/gtest.h>

#include "src/core/adversary.h"
#include "src/core/btr_system.h"
#include "src/spec/experiment_runner.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

TEST(FaultBehavior, NameRoundTripsExhaustively) {
  for (int i = 0; i < kFaultBehaviorCount; ++i) {
    const FaultBehavior b = static_cast<FaultBehavior>(i);
    const char* name = FaultBehaviorName(b);
    ASSERT_STRNE(name, "?") << "behavior " << i << " has no name";
    const auto parsed = ParseFaultBehavior(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(static_cast<int>(*parsed), i) << name;
  }
  EXPECT_FALSE(ParseFaultBehavior("no-such-behavior").has_value());
  EXPECT_FALSE(ParseFaultBehavior("").has_value());
  EXPECT_FALSE(ParseFaultBehavior("Crash").has_value());  // names are exact
}

TEST(AdversarySpec, ActiveOnHonorsUntil) {
  AdversarySpec spec;
  FaultInjection inj;
  inj.node = NodeId(3);
  inj.manifest_at = 100;
  inj.until = 200;
  inj.behavior = FaultBehavior::kOmission;
  spec.Add(inj);

  EXPECT_EQ(spec.ActiveOn(NodeId(3), 99), nullptr);
  ASSERT_NE(spec.ActiveOn(NodeId(3), 100), nullptr);
  ASSERT_NE(spec.ActiveOn(NodeId(3), 199), nullptr);
  EXPECT_EQ(spec.ActiveOn(NodeId(3), 200), nullptr);  // [manifest_at, until)
  EXPECT_EQ(spec.ActiveOn(NodeId(3), 5000), nullptr);
  EXPECT_EQ(spec.ActiveOn(NodeId(2), 150), nullptr);
  // ManifestTime reports the injection even though it heals later.
  EXPECT_EQ(spec.ManifestTime(NodeId(3)), 100);
}

TEST(AdversarySpec, ExpiredEscalationFallsBackToActiveInjection) {
  AdversarySpec spec;
  FaultInjection base;
  base.node = NodeId(1);
  base.manifest_at = 0;
  base.behavior = FaultBehavior::kDelay;
  spec.Add(base);
  FaultInjection escalation;
  escalation.node = NodeId(1);
  escalation.manifest_at = 100;
  escalation.until = 200;
  escalation.behavior = FaultBehavior::kCrash;
  spec.Add(escalation);

  ASSERT_NE(spec.ActiveOn(NodeId(1), 150), nullptr);
  EXPECT_EQ(spec.ActiveOn(NodeId(1), 150)->behavior, FaultBehavior::kCrash);
  // After the escalation window closes, the still-open base injection wins.
  ASSERT_NE(spec.ActiveOn(NodeId(1), 300), nullptr);
  EXPECT_EQ(spec.ActiveOn(NodeId(1), 300)->behavior, FaultBehavior::kDelay);
}

// A transient omission fault (finite `until`) must stop drawing
// path-declaration accusations once it heals, and the healed node's flows
// must come back. The blame threshold is raised past reach so neither run
// convicts — isolating the accusation stream itself.
TEST(Runtime, HealedNodeStopsDrawingAccusations) {
  auto measure = [](SimTime until) {
    BtrConfig config;
    config.planner.max_faults = 1;
    config.planner.recovery_bound = Milliseconds(500);
    config.runtime.blame_threshold = 100000;  // never convict
    config.seed = 11;
    BtrSystem system(MakeAvionicsScenario(6), config);
    EXPECT_TRUE(system.Plan().ok());
    FaultInjection inj;
    inj.node = ResolveCriticalPrimary(system);
    inj.manifest_at = Milliseconds(200);
    inj.behavior = FaultBehavior::kOmission;
    inj.until = until;
    system.AddFault(inj);
    auto report = system.Run(150);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::make_pair(report->total_node_stats.path_declarations,
                          report->correctness.correct_instances);
  };

  const auto [forever_accusations, forever_correct] = measure(kSimTimeNever);
  const auto [healed_accusations, healed_correct] = measure(Milliseconds(400));

  // While omitting, both variants draw accusations...
  EXPECT_GT(healed_accusations, 0u);
  // ...but the healed node stops drawing them (and its flows come back),
  // while the permanent fault keeps accumulating for the whole run.
  EXPECT_LT(healed_accusations, forever_accusations / 2);
  EXPECT_GT(healed_correct, forever_correct);
}

// A transient crash additionally undoes its network-level side effect
// (SetNodeDown), so the healed node is reachable again.
TEST(Runtime, HealedCrashRejoinsTheNetwork) {
  auto correct_count = [](SimTime until) {
    BtrConfig config;
    config.planner.max_faults = 1;
    config.planner.recovery_bound = Milliseconds(500);
    config.runtime.blame_threshold = 100000;  // never convict
    config.seed = 11;
    BtrSystem system(MakeAvionicsScenario(6), config);
    EXPECT_TRUE(system.Plan().ok());
    FaultInjection inj;
    inj.node = ResolveCriticalPrimary(system);
    inj.manifest_at = Milliseconds(200);
    inj.behavior = FaultBehavior::kCrash;
    inj.until = until;
    system.AddFault(inj);
    auto report = system.Run(150);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report->correctness.correct_instances;
  };
  EXPECT_GT(correct_count(Milliseconds(400)), correct_count(kSimTimeNever));
}

}  // namespace
}  // namespace btr
