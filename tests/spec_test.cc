// Experiment-spec (.btrx) tests.
//
// Two contracts: (1) the format round-trips canonically — for any spec,
// Serialize(Parse(Serialize(s))) == Serialize(s) byte-for-byte, fuzzed
// over ~100 randomized specs covering every record kind; (2) the spec
// path is equivalent to the raw C++ API — RunExperiment(Parse(text))
// produces a report that serializes byte-identically to the same script
// assembled by hand against BtrSystem, including the acceptance script:
// plan, inject a fault, mid-run link flap -> incremental rebuild ->
// patched install over the simulated network.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/btr_system.h"
#include "src/spec/experiment_runner.h"
#include "src/spec/experiment_spec.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

// The shipped examples/specs/avionics_flap.btrx script, record for record.
constexpr char kAvionicsFlap[] =
    "BTRX 1\n"
    "NAME avionics_flap\n"
    "SCENARIO avionics nodes=6\n"
    "CONFIG f=1 recovery-us=500000 seed=42\n"
    "PHASE periods=120\n"
    "FAULT node=critical-primary at-us=200000 behavior=value-corruption\n"
    "EDIT at-us=900000 kind=link-remove link=backboneB\n"
    "PHASE periods=80\n"
    "END\n";

// The shipped file must describe exactly the script the equivalence test
// below pins — the acceptance criterion covers the .btrx on disk, not
// just an embedded copy (annotations aside: serialization is canonical).
TEST(SpecFormat, ShippedAvionicsFlapFileMatchesAcceptanceScript) {
  std::ifstream in(std::string(BTR_SOURCE_DIR) + "/examples/specs/avionics_flap.btrx");
  ASSERT_TRUE(in.good()) << "examples/specs/avionics_flap.btrx is missing";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto from_file = ParseExperimentSpec(buffer.str());
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  EXPECT_EQ(SerializeExperimentSpec(*from_file), kAvionicsFlap);
}

TEST(SpecFormat, CanonicalTextRoundTrips) {
  auto spec = ParseExperimentSpec(kAvionicsFlap);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(SerializeExperimentSpec(*spec), kAvionicsFlap);
  EXPECT_EQ(spec->name, "avionics_flap");
  ASSERT_EQ(spec->phases.size(), 2u);
  EXPECT_EQ(spec->phases[0].periods, 120u);
  ASSERT_EQ(spec->phases[0].faults.size(), 1u);
  EXPECT_TRUE(spec->phases[0].faults[0].critical_primary);
  ASSERT_TRUE(spec->phases[0].has_edit());
  EXPECT_EQ(spec->phases[0].edit_at, Milliseconds(900));
  ASSERT_EQ(spec->phases[0].edit.edits.size(), 1u);
  EXPECT_EQ(spec->phases[0].edit.edits[0].kind, DeltaKind::kLinkRemove);
  EXPECT_FALSE(spec->phases[1].has_edit());
}

TEST(SpecFormat, CrlfLineEndingsAreAccepted) {
  // A spec authored on Windows: every line (including the blank separator
  // and the comment) ends in \r\n.
  std::string crlf;
  for (const char* line : {"# crlf spec", "", "BTRX 1", "NAME crlf", "SCENARIO scada nodes=4",
                           "CONFIG f=1 recovery-us=1000000 seed=7", "PHASE periods=10", "END"}) {
    crlf += line;
    crlf += "\r\n";
  }
  auto spec = ParseExperimentSpec(crlf);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "crlf");
}

TEST(SpecFormat, CommentsBlanksAndIndentationAreAccepted) {
  const std::string annotated =
      "# an annotated spec\n"
      "\n"
      "BTRX 1\n"
      "  NAME hello\n"
      "SCENARIO scada nodes=4\n"
      "\t# indented comment\n"
      "CONFIG f=1 recovery-us=1000000 seed=7\n"
      "  PHASE periods=10\n"
      "    FAULT node=2 at-us=0 behavior=crash\n"
      "END\n";
  auto spec = ParseExperimentSpec(annotated);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  // Serialization is canonical: no comments, no indentation.
  auto reparsed = ParseExperimentSpec(SerializeExperimentSpec(*spec));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(SerializeExperimentSpec(*reparsed), SerializeExperimentSpec(*spec));
}

// --- randomized canonical round trip --------------------------------------

std::string Token(Rng* rng, const char* prefix, size_t i) {
  std::string out = prefix + std::to_string(i);
  if (rng->NextBool(0.3)) {
    out += "_x";
  }
  return out;
}

Criticality RandomCrit(Rng* rng) {
  return static_cast<Criticality>(rng->NextInRange(0, kCriticalityLevels - 1));
}

SimDuration RandomUs(Rng* rng, int64_t lo_us, int64_t hi_us) {
  return Microseconds(rng->NextInRange(lo_us, hi_us));
}

// Optional radio-dynamics keys shared by the radio scenario kinds and
// inline LINK records: loss alone, a duty pair alone, both, or neither.
void RandomRadioAttrs(Rng* rng, uint32_t* loss_pm, SimDuration* duty_on,
                      SimDuration* duty_period) {
  if (rng->NextBool(0.5)) {
    *loss_pm = static_cast<uint32_t>(rng->NextInRange(1, 999));
  }
  if (rng->NextBool(0.5)) {
    const int64_t period_us = rng->NextInRange(2, 100000);
    *duty_period = Microseconds(period_us);
    *duty_on = Microseconds(rng->NextInRange(1, period_us));
  }
}

SpecScenario RandomScenario(Rng* rng) {
  SpecScenario s;
  switch (rng->NextBelow(7)) {
    case 0:
      s.kind = SpecScenario::Kind::kAvionics;
      s.nodes = static_cast<uint64_t>(rng->NextInRange(2, 8));
      break;
    case 1:
      s.kind = SpecScenario::Kind::kScada;
      s.nodes = static_cast<uint64_t>(rng->NextInRange(2, 6));
      break;
    case 2:
      s.kind = SpecScenario::Kind::kConvoy;
      s.nodes = static_cast<uint64_t>(rng->NextInRange(4, 10));
      break;
    case 3:
      s.kind = SpecScenario::Kind::kRandom;
      s.nodes = static_cast<uint64_t>(rng->NextInRange(4, 12));
      if (rng->NextBool(0.5)) {
        s.scenario_seed = rng->Next() % 1000 + 2;
      }
      if (rng->NextBool(0.5)) {
        s.layers = static_cast<uint64_t>(rng->NextInRange(1, 4));
      }
      if (rng->NextBool(0.5)) {
        s.tasks_per_layer = static_cast<uint64_t>(rng->NextInRange(1, 5));
      }
      if (rng->NextBool(0.5)) {
        s.random_period = RandomUs(rng, 1000, 100000);
      }
      break;
    case 5:
      s.kind = SpecScenario::Kind::kConvoyMobile;
      s.nodes = static_cast<uint64_t>(rng->NextInRange(4, 10));
      RandomRadioAttrs(rng, &s.loss_pm, &s.duty_on, &s.duty_period);
      break;
    case 6:
      s.kind = SpecScenario::Kind::kLossyMesh;
      s.nodes = static_cast<uint64_t>(rng->NextInRange(4, 16));
      RandomRadioAttrs(rng, &s.loss_pm, &s.duty_on, &s.duty_period);
      break;
    default: {
      s.kind = SpecScenario::Kind::kInline;
      s.nodes = static_cast<uint64_t>(rng->NextInRange(2, 6));
      s.period = RandomUs(rng, 1000, 50000);
      const size_t links = static_cast<size_t>(rng->NextInRange(1, 3));
      for (size_t l = 0; l < links; ++l) {
        SpecScenario::Link link;
        link.name = Token(rng, "l", l);
        for (uint32_t n = 0; n < s.nodes; ++n) {
          if (link.nodes.size() < 2 || rng->NextBool(0.7)) {
            link.nodes.push_back(n);
          }
        }
        link.bandwidth_bps = rng->NextInRange(1'000'000, 100'000'000);
        link.propagation = RandomUs(rng, 1, 50);
        RandomRadioAttrs(rng, &link.loss_pm, &link.duty_on, &link.duty_period);
        s.links.push_back(std::move(link));
      }
      const size_t tasks = static_cast<size_t>(rng->NextInRange(2, 6));
      for (size_t t = 0; t < tasks; ++t) {
        SpecScenario::Task task;
        task.name = Token(rng, "t", t);
        task.kind = static_cast<TaskKind>(rng->NextBelow(kTaskKindCount));
        task.wcet = RandomUs(rng, 10, 500);
        task.criticality = RandomCrit(rng);
        if (task.kind == TaskKind::kCompute) {
          task.state_bytes = static_cast<uint32_t>(rng->NextInRange(0, 4096));
        } else {
          task.pinned_node = static_cast<uint32_t>(rng->NextBelow(s.nodes));
        }
        if (task.kind == TaskKind::kSink) {
          task.deadline = RandomUs(rng, 100, 50000);
        }
        s.tasks.push_back(std::move(task));
      }
      const size_t flows = static_cast<size_t>(rng->NextInRange(0, 4));
      for (size_t f = 0; f < flows; ++f) {
        SpecScenario::Flow flow;
        flow.from = s.tasks[rng->NextBelow(s.tasks.size())].name;
        flow.to = s.tasks[rng->NextBelow(s.tasks.size())].name;
        flow.bytes = static_cast<uint32_t>(rng->NextInRange(0, 4096));
        s.flows.push_back(std::move(flow));
      }
      break;
    }
  }
  return s;
}

DeltaEdit RandomEdit(Rng* rng, size_t i) {
  switch (rng->NextBelow(6)) {
    case 0: {
      std::vector<NodeId> endpoints = {NodeId(0), NodeId(1)};
      if (rng->NextBool(0.5)) {
        endpoints.push_back(NodeId(2));
      }
      return DeltaEdit::LinkAdd(Token(rng, "newlink", i), std::move(endpoints),
                                rng->NextInRange(1'000'000, 50'000'000),
                                RandomUs(rng, 1, 20));
    }
    case 1:
      return DeltaEdit::LinkRemove(Token(rng, "lnk", i));
    case 2: {
      const bool keep_bw = rng->NextBool(0.3);
      const bool keep_prop = !keep_bw && rng->NextBool(0.3);
      return DeltaEdit::LinkLatencyChange(
          Token(rng, "lnk", i), keep_bw ? 0 : rng->NextInRange(1'000'000, 50'000'000),
          keep_prop ? -1 : RandomUs(rng, 1, 20));
    }
    case 3: {
      TaskSpec task;
      task.name = Token(rng, "staged", i);
      task.kind = static_cast<TaskKind>(rng->NextBelow(kTaskKindCount));
      task.wcet = RandomUs(rng, 10, 400);
      task.criticality = RandomCrit(rng);
      if (task.kind == TaskKind::kCompute) {
        task.state_bytes = static_cast<uint32_t>(rng->NextInRange(0, 2048));
      } else {
        task.pinned_node = NodeId(static_cast<uint32_t>(rng->NextBelow(4)));
      }
      if (task.kind == TaskKind::kSink) {
        task.relative_deadline = RandomUs(rng, 100, 20000);
      }
      std::vector<DeltaChannel> channels;
      const size_t chans = static_cast<size_t>(rng->NextInRange(0, 2));
      for (size_t c = 0; c < chans; ++c) {
        channels.push_back(DeltaChannel{Token(rng, "a", c), Token(rng, "b", c),
                                        static_cast<uint32_t>(rng->NextInRange(1, 512))});
      }
      return DeltaEdit::TaskAdd(std::move(task), std::move(channels));
    }
    case 4:
      return DeltaEdit::TaskRemove(Token(rng, "tsk", i));
    default:
      return DeltaEdit::TaskReweight(Token(rng, "tsk", i), RandomCrit(rng));
  }
}

ExperimentSpec RandomSpec(Rng* rng, size_t index) {
  ExperimentSpec spec;
  spec.name = Token(rng, "fuzz", index);
  spec.scenario = RandomScenario(rng);
  spec.max_faults = static_cast<uint32_t>(rng->NextInRange(0, 3));
  spec.recovery_bound = RandomUs(rng, 1000, 2'000'000);
  spec.seed = rng->Next() % 100000;
  spec.heartbeats = rng->NextBool(0.8);

  const char* axis_keys[] = {"seed", "f", "nodes", "recovery-us"};
  const size_t axes = static_cast<size_t>(rng->NextInRange(0, 4));
  for (size_t a = 0; a < axes && a < 4; ++a) {
    SweepAxis axis;
    axis.key = axis_keys[a];
    if (axis.key == "nodes" && spec.scenario.kind == SpecScenario::Kind::kInline) {
      continue;  // forbidden combination (parser rejects it)
    }
    const size_t values = static_cast<size_t>(rng->NextInRange(1, 4));
    for (size_t v = 0; v < values; ++v) {
      // Values must satisfy the same bounds as the fields they override.
      if (axis.key == "f") {
        axis.values.push_back(static_cast<uint64_t>(rng->NextInRange(0, 16)));
      } else {
        axis.values.push_back(rng->Next() % 1000 + 1);
      }
    }
    spec.sweeps.push_back(std::move(axis));
  }

  const size_t phases = static_cast<size_t>(rng->NextInRange(1, 3));
  for (size_t p = 0; p < phases; ++p) {
    SpecPhase phase;
    phase.periods = static_cast<uint64_t>(rng->NextInRange(1, 300));
    const size_t faults = static_cast<size_t>(rng->NextInRange(0, 3));
    for (size_t f = 0; f < faults; ++f) {
      SpecFault fault;
      FaultInjection& inj = fault.injection;
      if (rng->NextBool(0.2)) {
        fault.critical_primary = true;
      } else {
        // Inline fault nodes are range-checked at parse time.
        const uint64_t bound =
            spec.scenario.kind == SpecScenario::Kind::kInline ? spec.scenario.nodes : 64;
        inj.node = NodeId(static_cast<uint32_t>(rng->NextBelow(bound)));
      }
      inj.manifest_at = RandomUs(rng, 0, 1'000'000);
      inj.behavior = static_cast<FaultBehavior>(rng->NextBelow(kFaultBehaviorCount));
      if (rng->NextBool(0.3)) {
        inj.until = inj.manifest_at + RandomUs(rng, 1, 1'000'000);
      }
      if (inj.behavior == FaultBehavior::kDelay) {
        inj.delay = RandomUs(rng, 1, 10000);
      }
      if (inj.behavior == FaultBehavior::kSelectiveOmission && rng->NextBool(0.7)) {
        inj.target = NodeId(static_cast<uint32_t>(rng->NextBelow(8)));
      }
      if (inj.behavior == FaultBehavior::kEvidenceFlood) {
        inj.flood_rate = static_cast<uint32_t>(rng->NextInRange(1, 64));
      }
      phase.faults.push_back(std::move(fault));
    }
    if (rng->NextBool(0.4)) {
      phase.edit_at = RandomUs(rng, 0, 2'000'000);
      const size_t edits = static_cast<size_t>(rng->NextInRange(1, 3));
      for (size_t e = 0; e < edits; ++e) {
        phase.edit.edits.push_back(RandomEdit(rng, e));
      }
    }
    spec.phases.push_back(std::move(phase));
  }
  return spec;
}

TEST(SpecFormat, FuzzedSerializeParseSerializeIsByteIdentical) {
  Rng rng(20260731);
  for (size_t i = 0; i < 120; ++i) {
    const ExperimentSpec spec = RandomSpec(&rng, i);
    const std::string first = SerializeExperimentSpec(spec);
    auto parsed = ParseExperimentSpec(first);
    ASSERT_TRUE(parsed.ok()) << "spec " << i << ": " << parsed.status().ToString()
                             << "\n--- serialized ---\n"
                             << first;
    const std::string second = SerializeExperimentSpec(*parsed);
    ASSERT_EQ(first, second) << "spec " << i << " did not round-trip canonically";
  }
}

// --- sweep expansion -------------------------------------------------------

TEST(SpecSweeps, ExpandsCartesianProductWithStableNames) {
  ExperimentSpec spec;
  spec.name = "sweepy";
  SweepAxis seeds;
  seeds.key = "seed";
  seeds.values = {7, 8};
  SweepAxis faults;
  faults.key = "f";
  faults.values = {1, 2, 3};
  spec.sweeps = {seeds, faults};
  SpecPhase phase;
  phase.periods = 10;
  spec.phases.push_back(phase);

  const auto expanded = ExpandSweeps(spec);
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  ASSERT_EQ(expanded->size(), 6u);
  EXPECT_EQ((*expanded)[0].name, "sweepy/seed=7,f=1");
  EXPECT_EQ((*expanded)[0].seed, 7u);
  EXPECT_EQ((*expanded)[0].max_faults, 1u);
  EXPECT_EQ((*expanded)[5].name, "sweepy/seed=8,f=3");
  EXPECT_EQ((*expanded)[5].seed, 8u);
  EXPECT_EQ((*expanded)[5].max_faults, 3u);
  for (const ExperimentSpec& one : *expanded) {
    EXPECT_TRUE(one.sweeps.empty());
  }
}

TEST(SpecSweeps, NoAxesExpandsToItself) {
  ExperimentSpec spec;
  spec.name = "solo";
  const auto expanded = ExpandSweeps(spec);
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  ASSERT_EQ(expanded->size(), 1u);
  EXPECT_EQ((*expanded)[0].name, "solo");
}

// --- spec path == raw C++ API path -----------------------------------------

// The acceptance script: the spec-driven run of the avionics flap
// experiment must produce a report byte-identical to the same script
// assembled by hand against the public BtrSystem lifecycle API — plan,
// inject, mid-run link flap -> incremental rebuild -> patched install over
// the simulated network, next phase on the edited topology.
TEST(SpecEquivalence, AvionicsFlapMatchesHandCodedDriver) {
  auto spec = ParseExperimentSpec(kAvionicsFlap);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto via_spec = RunExperiment(*spec);
  ASSERT_TRUE(via_spec.ok()) << via_spec.status().ToString();

  // The same script, hand-coded.
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(500);
  config.seed = 42;
  BtrSystem system(MakeAvionicsScenario(6), config);
  ASSERT_TRUE(system.Plan().ok());
  FaultInjection inj;
  inj.node = ResolveCriticalPrimary(system);
  inj.manifest_at = Milliseconds(200);
  inj.behavior = FaultBehavior::kValueCorruption;
  system.AddFault(inj);
  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("backboneB"));
  ASSERT_TRUE(system.ApplyDelta(delta, Milliseconds(900)).ok());
  auto phase0 = system.Run(120);
  ASSERT_TRUE(phase0.ok()) << phase0.status().ToString();
  // The rollout run committed the rebuilt strategy: the link is gone.
  EXPECT_EQ(system.scenario().topology.link_count(), 1u);
  EXPECT_FALSE(system.has_staged_delta());
  system.ClearFaults();
  auto phase1 = system.Run(80);
  ASSERT_TRUE(phase1.ok()) << phase1.status().ToString();

  ExperimentReport by_hand;
  by_hand.name = "avionics_flap";
  by_hand.phases.push_back(std::move(phase0).value());
  by_hand.phases.push_back(std::move(phase1).value());

  // Byte-identical reports, so equal fingerprints.
  EXPECT_EQ(SerializeExperimentReport(*via_spec), SerializeExperimentReport(by_hand));
  EXPECT_EQ(FingerprintExperimentReport(*via_spec), FingerprintExperimentReport(by_hand));

  // The rollout actually happened over the simulated network.
  const InstallRunReport& install = via_spec->phases[0].install;
  EXPECT_NE(install.started_at, kSimTimeNever);
  EXPECT_EQ(install.nodes_installed, system.scenario().topology.node_count());
  EXPECT_GT(install.patch_bytes_sent, 0u);
}

// A no-edit script through both paths (different scenario + a transient
// fault), to pin the equivalence beyond the flap script.
TEST(SpecEquivalence, ScadaTransientMatchesHandCodedDriver) {
  const std::string text =
      "BTRX 1\n"
      "NAME scada_transient\n"
      "SCENARIO scada nodes=4\n"
      "CONFIG f=1 recovery-us=1000000 seed=7\n"
      "PHASE periods=100\n"
      "FAULT node=critical-primary at-us=500000 behavior=omission until-us=2500000\n"
      "END\n";
  auto spec = ParseExperimentSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto via_spec = RunExperiment(*spec);
  ASSERT_TRUE(via_spec.ok()) << via_spec.status().ToString();

  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(1000);
  config.seed = 7;
  BtrSystem system(MakeScadaScenario(4), config);
  ASSERT_TRUE(system.Plan().ok());
  FaultInjection inj;
  inj.node = ResolveCriticalPrimary(system);
  inj.manifest_at = Milliseconds(500);
  inj.behavior = FaultBehavior::kOmission;
  inj.until = Milliseconds(2500);
  system.AddFault(inj);
  auto run = system.Run(100);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  ExperimentReport by_hand;
  by_hand.name = "scada_transient";
  by_hand.phases.push_back(std::move(run).value());
  EXPECT_EQ(SerializeExperimentReport(*via_spec), SerializeExperimentReport(by_hand));
}

// Determinism: the same spec runs to the same fingerprint.
TEST(SpecEquivalence, RepeatedRunsFingerprintIdentically) {
  auto spec = ParseExperimentSpec(kAvionicsFlap);
  ASSERT_TRUE(spec.ok());
  auto first = RunExperiment(*spec);
  auto second = RunExperiment(*spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(FingerprintExperimentReport(*first), FingerprintExperimentReport(*second));
}

}  // namespace
}  // namespace btr
