// Equivalence oracle for incremental replanning (StrategyBuilder::Rebuild).
//
// The contract under test: for any supported edit delta,
//   Rebuild(Build(G), delta)  ==  Build(apply(G, delta))
// where equality is *byte-identical serialization* via strategy_io — the
// strongest observable equality the system has (it covers placements,
// starts, tables, budgets, shedding, utility, dedup structure, and
// provenance). Directed cases pin down each delta kind and the clean/dirty
// accounting; the randomized suite drives hundreds of generated edit
// streams through chained rebuilds.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/planner.h"
#include "src/core/strategy_builder.h"
#include "src/core/strategy_delta.h"
#include "src/core/strategy_io.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

// One generation of the edited system. Planner holds pointers into topo and
// workload, so a System is pinned in place once the planner exists (the
// test keeps generations in a deque and never moves them afterwards).
struct System {
  Topology topo;
  Dataflow workload{Milliseconds(10)};
  std::unique_ptr<Planner> planner;

  void MakePlanner(const PlannerConfig& config) {
    planner = std::make_unique<Planner>(&topo, &workload, config);
  }
};

std::string Bytes(const Strategy& strategy, const Planner& planner) {
  return SaveStrategy(strategy, planner.graph(), planner.topology());
}

PlannerConfig SmallConfig(uint32_t f) {
  PlannerConfig config;
  config.max_faults = f;
  config.planner_threads = 2;
  return config;
}

// Applies `delta`, full-builds and rebuilds, and checks byte equality.
// Returns the new generation's strategy (the *incremental* one, so chained
// calls compound any divergence a single step might hide).
StatusOr<Strategy> CheckOneStep(const System& old_sys, const Strategy& old_strategy,
                                const StrategyDelta& delta, std::deque<System>* generations,
                                const PlannerConfig& config, const char* label) {
  System& next = generations->emplace_back();
  Status applied = ApplyDelta(old_sys.topo, old_sys.workload, delta, &next.topo,
                              &next.workload);
  if (!applied.ok()) {
    ADD_FAILURE() << label << ": ApplyDelta failed: " << applied.ToString();
    return applied;
  }
  next.MakePlanner(config);

  StrategyBuilder builder(next.planner.get(), config.planner_threads);
  StatusOr<Strategy> full = builder.Build();
  StatusOr<Strategy> incremental = builder.Rebuild(old_strategy, *old_sys.planner, delta);

  EXPECT_EQ(full.ok(), incremental.ok())
      << label << ": full build " << full.status().ToString() << " vs incremental "
      << incremental.status().ToString() << " for delta " << delta.ToString();
  if (!full.ok() || !incremental.ok()) {
    return full.ok() ? incremental.status() : full.status();
  }
  EXPECT_EQ(Bytes(*full, *next.planner), Bytes(*incremental, *next.planner))
      << label << ": incremental rebuild diverged for delta " << delta.ToString();
  return incremental;
}

// A small bus system with a provably redundant point-to-point link: both
// its endpoints already share the bus and the extra link has the same
// propagation, so no route, neighbor set, or budget ever depends on it.
System* MakeBusWithRedundantLink(std::deque<System>* generations, bool with_link,
                                 const PlannerConfig& config) {
  Rng rng(7);
  RandomDagParams params;
  params.compute_nodes = 4;
  params.layers = 2;
  params.tasks_per_layer = 3;
  Scenario s = MakeRandomScenario(&rng, params);
  System& sys = generations->emplace_back();
  sys.topo = std::move(s.topology);
  sys.workload = std::move(s.workload);
  if (with_link) {
    sys.topo.AddLink({NodeId(2), NodeId(3)}, 25'000'000, Microseconds(2), "xlink");
  }
  sys.MakePlanner(config);
  return &sys;
}

TEST(IncrementalReplan, RedundantLinkFlapKeepsEveryModeClean) {
  const PlannerConfig config = SmallConfig(2);
  std::deque<System> generations;
  System* base = MakeBusWithRedundantLink(&generations, /*with_link=*/true, config);

  StrategyBuilder builder(base->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  // Link down.
  StrategyDelta down;
  down.edits.push_back(DeltaEdit::LinkRemove("xlink"));
  auto after_down = CheckOneStep(*base, *strategy, down, &generations, config, "flap-down");
  ASSERT_TRUE(after_down.ok());
  const System& down_sys = generations.back();
  PlannerMetrics m = down_sys.planner->metrics();
  EXPECT_EQ(m.rebuild_dirty_modes, 0u);
  EXPECT_EQ(m.rebuild_clean_modes, after_down->mode_count());

  // Link back up.
  StrategyDelta up;
  up.edits.push_back(
      DeltaEdit::LinkAdd("xlink", {NodeId(2), NodeId(3)}, 25'000'000, Microseconds(2)));
  auto after_up =
      CheckOneStep(down_sys, *after_down, up, &generations, config, "flap-up");
  ASSERT_TRUE(after_up.ok());
  m = generations.back().planner->metrics();
  EXPECT_EQ(m.rebuild_dirty_modes, 0u);
  EXPECT_EQ(m.rebuild_clean_modes, after_up->mode_count());
}

TEST(IncrementalReplan, LoadBearingLinkRemoveReplansAndMatches) {
  const PlannerConfig config = SmallConfig(1);
  std::deque<System> generations;
  // Ring topology: every link is load-bearing, so the rebuild must replan.
  System& sys = generations.emplace_back();
  sys.topo = Topology::Ring(5, 50'000'000, Microseconds(2));
  // A chord so removing one ring link cannot disconnect the system.
  sys.topo.AddLink({NodeId(0), NodeId(2)}, 50'000'000, Microseconds(2), "chord");
  Dataflow w(Milliseconds(20));
  const TaskId src = w.AddSource("s", Microseconds(40), NodeId(0), Criticality::kHigh);
  const TaskId c0 = w.AddCompute("c0", Microseconds(200), 1024, Criticality::kHigh);
  const TaskId c1 = w.AddCompute("c1", Microseconds(200), 512, Criticality::kMedium);
  const TaskId snk =
      w.AddSink("k", Microseconds(40), NodeId(3), Criticality::kHigh, Milliseconds(15));
  w.Connect(src, c0, 128);
  w.Connect(c0, c1, 128);
  w.Connect(c1, snk, 64);
  sys.workload = std::move(w);
  sys.MakePlanner(config);

  StrategyBuilder builder(sys.planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("ring1"));
  auto rebuilt = CheckOneStep(sys, *strategy, delta, &generations, config, "ring-cut");
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_GT(generations.back().planner->metrics().rebuild_dirty_modes, 0u);
}

TEST(IncrementalReplan, ParallelLinkSwapIsNotMistakenForClean) {
  // Two parallel links between the same node pair: routes ride the faster,
  // earlier-id one. Removing it slides the slower link into its numeric
  // link id, so a raw-id route comparison would call every mode clean and
  // keep budgets computed for the fast link. The classifier must see
  // through the renumbering (link identity, not link id).
  const PlannerConfig config = SmallConfig(1);
  std::deque<System> generations;
  System& sys = generations.emplace_back();
  sys.topo.AddNodes(4);
  const std::vector<NodeId> all = {NodeId(0), NodeId(1), NodeId(2), NodeId(3)};
  sys.topo.AddLink(all, 50'000'000, Microseconds(2), "bus_fast");
  sys.topo.AddLink(all, 5'000'000, Microseconds(2), "bus_slow");
  Dataflow w(Milliseconds(20));
  const TaskId src = w.AddSource("s", Microseconds(40), NodeId(0), Criticality::kHigh);
  const TaskId c0 = w.AddCompute("c0", Microseconds(200), 1024, Criticality::kHigh);
  const TaskId snk =
      w.AddSink("k", Microseconds(40), NodeId(1), Criticality::kHigh, Milliseconds(18));
  w.Connect(src, c0, 256);
  w.Connect(c0, snk, 128);
  sys.workload = std::move(w);
  sys.MakePlanner(config);

  StrategyBuilder builder(sys.planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("bus_fast"));
  auto rebuilt = CheckOneStep(sys, *strategy, delta, &generations, config, "link-swap");
  ASSERT_TRUE(rebuilt.ok());
  // Every route now rides a 10x slower medium; no mode can be clean.
  EXPECT_EQ(generations.back().planner->metrics().rebuild_clean_modes, 0u);
}

TEST(IncrementalReplan, LatencyChangeOnUsedAndUnusedLinks) {
  const PlannerConfig config = SmallConfig(2);
  std::deque<System> generations;
  System* base = MakeBusWithRedundantLink(&generations, /*with_link=*/true, config);
  StrategyBuilder builder(base->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  // Re-measuring the unused redundant link touches nothing.
  StrategyDelta unused;
  unused.edits.push_back(DeltaEdit::LinkLatencyChange("xlink", 10'000'000, -1));
  auto after_unused =
      CheckOneStep(*base, *strategy, unused, &generations, config, "latency-unused");
  ASSERT_TRUE(after_unused.ok());
  EXPECT_EQ(generations.back().planner->metrics().rebuild_dirty_modes, 0u);

  // Re-measuring the bus (every route uses it) replans everything it
  // reaches, and the result still matches a full build.
  const System& prev = generations.back();
  StrategyDelta bus;
  bus.edits.push_back(DeltaEdit::LinkLatencyChange("bus", 40'000'000, Microseconds(3)));
  auto after_bus =
      CheckOneStep(prev, *after_unused, bus, &generations, config, "latency-bus");
  ASSERT_TRUE(after_bus.ok());
  EXPECT_GT(generations.back().planner->metrics().rebuild_dirty_modes, 0u);
}

TEST(IncrementalReplan, StagedTaskAddMigratesEveryModeClean) {
  const PlannerConfig config = SmallConfig(2);
  std::deque<System> generations;
  System* base = MakeBusWithRedundantLink(&generations, /*with_link=*/false, config);
  StrategyBuilder builder(base->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  // Staged rollout: the task exists (the universe grows) but is not wired
  // to any flow yet, so it is active in no mode and every mode migrates.
  TaskSpec staged;
  staged.name = "staged_filter";
  staged.kind = TaskKind::kCompute;
  staged.wcet = Microseconds(150);
  staged.state_bytes = 2048;
  staged.criticality = Criticality::kMedium;
  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::TaskAdd(staged));
  auto rebuilt = CheckOneStep(*base, *strategy, delta, &generations, config, "staged-add");
  ASSERT_TRUE(rebuilt.ok());
  const PlannerMetrics m = generations.back().planner->metrics();
  EXPECT_EQ(m.rebuild_dirty_modes, 0u);
  EXPECT_EQ(m.rebuild_clean_modes, rebuilt->mode_count());
  EXPECT_GT(m.rebuild_migrated_bodies, 0u);

  // Retiring it again is equally clean.
  const System& prev = generations.back();
  StrategyDelta retire;
  retire.edits.push_back(DeltaEdit::TaskRemove("staged_filter"));
  auto retired =
      CheckOneStep(prev, *rebuilt, retire, &generations, config, "staged-remove");
  ASSERT_TRUE(retired.ok());
  EXPECT_EQ(generations.back().planner->metrics().rebuild_dirty_modes, 0u);
}

TEST(IncrementalReplan, WiredTaskAddReplansAndMatches) {
  const PlannerConfig config = SmallConfig(1);
  std::deque<System> generations;
  System* base = MakeBusWithRedundantLink(&generations, /*with_link=*/false, config);
  StrategyBuilder builder(base->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  TaskSpec filter;
  filter.name = "live_filter";
  filter.kind = TaskKind::kCompute;
  filter.wcet = Microseconds(120);
  filter.state_bytes = 512;
  filter.criticality = Criticality::kHigh;
  StrategyDelta delta;
  delta.edits.push_back(
      DeltaEdit::TaskAdd(filter, {{"src0", "live_filter", 128}, {"live_filter", "snk0", 96}}));
  auto rebuilt = CheckOneStep(*base, *strategy, delta, &generations, config, "wired-add");
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_GT(generations.back().planner->metrics().rebuild_dirty_modes, 0u);
}

TEST(IncrementalReplan, ReweightAcrossReplicationThresholdMatches) {
  const PlannerConfig config = SmallConfig(1);
  std::deque<System> generations;
  System* base = MakeBusWithRedundantLink(&generations, /*with_link=*/false, config);
  StrategyBuilder builder(base->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  // Reweighting a compute task to best-effort drops it below the
  // replication threshold, shrinking the augmented universe; promoting a
  // sink reorders shedding. Both must match a full build exactly.
  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::TaskReweight("c0_0", Criticality::kBestEffort));
  delta.edits.push_back(DeltaEdit::TaskReweight("snk0", Criticality::kSafetyCritical));
  auto rebuilt = CheckOneStep(*base, *strategy, delta, &generations, config, "reweight");
  ASSERT_TRUE(rebuilt.ok());
}

TEST(IncrementalReplan, MultiEditBatchMatches) {
  const PlannerConfig config = SmallConfig(1);
  std::deque<System> generations;
  System* base = MakeBusWithRedundantLink(&generations, /*with_link=*/true, config);
  StrategyBuilder builder(base->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  TaskSpec staged;
  staged.name = "staged";
  staged.kind = TaskKind::kCompute;
  staged.wcet = Microseconds(90);
  staged.criticality = Criticality::kLow;
  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("xlink"));
  delta.edits.push_back(DeltaEdit::LinkLatencyChange("bus", 60'000'000, -1));
  delta.edits.push_back(DeltaEdit::TaskAdd(staged));
  delta.edits.push_back(DeltaEdit::TaskReweight("snk1", Criticality::kBestEffort));
  auto rebuilt = CheckOneStep(*base, *strategy, delta, &generations, config, "batch");
  ASSERT_TRUE(rebuilt.ok());
}

TEST(IncrementalReplan, DeltaRejectsWiringToTaskRemovedInSameBatch) {
  // A TaskAdd may not wire a channel to a task another edit in the same
  // batch removes — removal filtering is batch-wide, so the channel would
  // dangle. Must be a clean validation error, not a crash.
  const PlannerConfig config = SmallConfig(1);
  std::deque<System> generations;
  System* base = MakeBusWithRedundantLink(&generations, /*with_link=*/false, config);

  TaskSpec spec;
  spec.name = "wired_to_doomed";
  spec.kind = TaskKind::kCompute;
  spec.wcet = Microseconds(100);
  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::TaskAdd(spec, {{"c0_0", "wired_to_doomed", 64}}));
  delta.edits.push_back(DeltaEdit::TaskRemove("c0_0"));

  Topology new_topo;
  Dataflow new_workload{Milliseconds(10)};
  const Status applied =
      ApplyDelta(base->topo, base->workload, delta, &new_topo, &new_workload);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.code(), StatusCode::kNotFound);
}

TEST(IncrementalReplan, RebuildRefusesMismatchedProvenance) {
  const PlannerConfig config = SmallConfig(1);
  std::deque<System> generations;
  System* base = MakeBusWithRedundantLink(&generations, /*with_link=*/true, config);
  StrategyBuilder builder(base->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  // A planner with a different scoring config is not the planner this
  // strategy was compiled by; resuming from it must be refused.
  PlannerConfig other = config;
  other.weight_parent = 99.0;
  Planner impostor(&base->topo, &base->workload, other);
  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("xlink"));

  System next;
  Status applied =
      ApplyDelta(base->topo, base->workload, delta, &next.topo, &next.workload);
  ASSERT_TRUE(applied.ok());
  next.MakePlanner(config);
  StrategyBuilder next_builder(next.planner.get(), 1);
  auto rebuilt = next_builder.Rebuild(*strategy, impostor, delta);
  ASSERT_FALSE(rebuilt.ok());
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IncrementalReplan, ResumeFromLoadedBlobMatchesFullBuild) {
  const PlannerConfig config = SmallConfig(2);
  std::deque<System> generations;
  System* base = MakeBusWithRedundantLink(&generations, /*with_link=*/true, config);
  StrategyBuilder builder(base->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  // Round-trip the old strategy through the v2 blob — the persisted
  // provenance is what lets Rebuild trust the loaded copy.
  const std::string blob = Bytes(*strategy, *base->planner);
  auto loaded = LoadStrategy(blob, base->planner->graph(), base->topo);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->provenance().present);

  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("xlink"));
  auto rebuilt =
      CheckOneStep(*base, *loaded, delta, &generations, config, "resume-from-blob");
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(generations.back().planner->metrics().rebuild_dirty_modes, 0u);
}

// --- Randomized edit-stream oracle -------------------------------------

struct StreamState {
  std::vector<std::string> own_links;  // links added by earlier edits
  std::vector<std::string> own_tasks;  // tasks added by earlier edits
  int serial = 0;
};

StrategyDelta RandomDelta(Rng* rng, const System& sys, StreamState* state) {
  StrategyDelta delta;
  const size_t node_count = sys.topo.node_count();
  for (int attempt = 0; attempt < 8 && delta.edits.empty(); ++attempt) {
    switch (rng->NextBelow(6)) {
      case 0: {  // link add (point-to-point between random distinct nodes)
        const std::string name = "xl" + std::to_string(state->serial++);
        const uint32_t a = static_cast<uint32_t>(rng->NextBelow(node_count));
        uint32_t b = static_cast<uint32_t>(rng->NextBelow(node_count));
        if (b == a) {
          b = (b + 1) % static_cast<uint32_t>(node_count);
        }
        delta.edits.push_back(DeltaEdit::LinkAdd(
            name, {NodeId(a), NodeId(b)},
            10'000'000 + static_cast<int64_t>(rng->NextBelow(40'000'000)),
            Microseconds(static_cast<int64_t>(rng->NextBelow(5)) + 1)));
        state->own_links.push_back(name);
        break;
      }
      case 1: {  // link remove (only links this stream added: never partition)
        if (state->own_links.empty()) {
          break;
        }
        const size_t pick = rng->NextBelow(state->own_links.size());
        delta.edits.push_back(DeltaEdit::LinkRemove(state->own_links[pick]));
        state->own_links.erase(state->own_links.begin() + static_cast<long>(pick));
        break;
      }
      case 2: {  // latency re-measurement of any link
        const LinkSpec& link =
            sys.topo.link(LinkId(static_cast<uint32_t>(rng->NextBelow(sys.topo.link_count()))));
        const bool change_bw = rng->NextBool(0.7);
        const bool change_prop = !change_bw || rng->NextBool(0.3);
        delta.edits.push_back(DeltaEdit::LinkLatencyChange(
            link.name,
            change_bw ? std::max<int64_t>(1'000'000, link.bandwidth_bps / 2 +
                                                         static_cast<int64_t>(rng->NextBelow(
                                                             static_cast<uint64_t>(
                                                                 link.bandwidth_bps))))
                      : 0,
            change_prop ? link.propagation + Microseconds(static_cast<int64_t>(
                              rng->NextBelow(4)))
                        : -1));
        break;
      }
      case 3: {  // task add: staged (disconnected) or wired into a sink
        TaskSpec spec;
        spec.name = "xt" + std::to_string(state->serial++);
        spec.kind = TaskKind::kCompute;
        spec.wcet = Microseconds(static_cast<int64_t>(rng->NextBelow(200)) + 50);
        spec.state_bytes = static_cast<uint32_t>(rng->NextBelow(4096));
        spec.criticality = static_cast<Criticality>(rng->NextBelow(kCriticalityLevels));
        std::vector<DeltaChannel> channels;
        if (rng->NextBool(0.6)) {
          // Wire: input from a random non-sink task, output to a random sink
          // (acyclic by construction: the new task is fresh, sinks have no
          // outputs).
          std::vector<TaskId> feeders;
          for (const TaskSpec& t : sys.workload.tasks()) {
            if (t.kind != TaskKind::kSink) {
              feeders.push_back(t.id);
            }
          }
          const std::vector<TaskId> sinks = sys.workload.SinkIds();
          if (!feeders.empty() && !sinks.empty()) {
            const TaskId from = feeders[rng->NextBelow(feeders.size())];
            const TaskId to = sinks[rng->NextBelow(sinks.size())];
            channels.push_back({sys.workload.task(from).name, spec.name,
                                static_cast<uint32_t>(rng->NextBelow(512) + 32)});
            channels.push_back({spec.name, sys.workload.task(to).name,
                                static_cast<uint32_t>(rng->NextBelow(512) + 32)});
          }
        }
        delta.edits.push_back(DeltaEdit::TaskAdd(spec, std::move(channels)));
        state->own_tasks.push_back(spec.name);
        break;
      }
      case 4: {  // task remove (only tasks this stream added)
        if (state->own_tasks.empty()) {
          break;
        }
        const size_t pick = rng->NextBelow(state->own_tasks.size());
        delta.edits.push_back(DeltaEdit::TaskRemove(state->own_tasks[pick]));
        state->own_tasks.erase(state->own_tasks.begin() + static_cast<long>(pick));
        break;
      }
      case 5: {  // reweight a random task
        const std::vector<TaskSpec>& tasks = sys.workload.tasks();
        const TaskSpec& t = tasks[rng->NextBelow(tasks.size())];
        delta.edits.push_back(DeltaEdit::TaskReweight(
            t.name, static_cast<Criticality>(rng->NextBelow(kCriticalityLevels))));
        break;
      }
    }
  }
  if (delta.edits.empty()) {
    // Degenerate stream state; fall back to a guaranteed-valid edit.
    delta.edits.push_back(DeltaEdit::LinkLatencyChange(
        sys.topo.link(LinkId(0)).name, 0, sys.topo.link(LinkId(0)).propagation + 1));
  }
  return delta;
}

TEST(IncrementalReplan, RandomizedEditStreamsSerializeIdentically) {
  constexpr int kSequences = 200;
  constexpr int kMaxEditsPerSequence = 4;
  int checked_steps = 0;

  for (int seq = 0; seq < kSequences; ++seq) {
    Rng rng(0x5EED0000 + static_cast<uint64_t>(seq));
    RandomDagParams params;
    params.compute_nodes = 3 + rng.NextBelow(3);
    params.sources = 2;
    params.sinks = 2;
    params.layers = 1 + rng.NextBelow(2);
    params.tasks_per_layer = 2 + rng.NextBelow(2);
    const PlannerConfig config = SmallConfig(rng.NextBool(0.25) ? 2 : 1);

    std::deque<System> generations;
    System& base = generations.emplace_back();
    {
      Scenario s = MakeRandomScenario(&rng, params);
      base.topo = std::move(s.topology);
      base.workload = std::move(s.workload);
    }
    base.MakePlanner(config);
    StrategyBuilder builder(base.planner.get(), config.planner_threads);
    auto strategy = builder.Build();
    if (!strategy.ok()) {
      continue;  // infeasible base scenario; nothing to diff against
    }

    StreamState state;
    const System* current = &base;
    Strategy carried = std::move(strategy).value();
    const int edits = 1 + static_cast<int>(rng.NextBelow(kMaxEditsPerSequence));
    for (int step = 0; step < edits; ++step) {
      const StrategyDelta delta = RandomDelta(&rng, *current, &state);
      const std::string label =
          "seq " + std::to_string(seq) + " step " + std::to_string(step);
      auto next = CheckOneStep(*current, carried, delta, &generations, config,
                               label.c_str());
      if (!next.ok()) {
        break;  // both sides failed identically (checked inside)
      }
      carried = std::move(next).value();
      current = &generations.back();
      ++checked_steps;
    }
  }
  // The suite is only meaningful if the streams actually exercised rebuilds.
  EXPECT_GE(checked_steps, kSequences);
}

}  // namespace
}  // namespace btr
