// Property-based suites (TEST_P): invariants that must hold across fault
// behaviors, scenarios, seeds, and parameter sweeps.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/core/btr_system.h"
#include "src/plant/models.h"
#include "src/plant/outage_analysis.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

// ---------------------------------------------------------------------------
// Property: for every directly-detectable Byzantine behavior, on every
// scenario, BTR detects the fault and Definition 3.1 holds.
// ---------------------------------------------------------------------------

enum class ScenarioKind : int { kAvionics = 0, kScada = 1 };

using RecoveryParam = std::tuple<FaultBehavior, ScenarioKind, uint64_t /*seed*/>;

class RecoveryProperty : public ::testing::TestWithParam<RecoveryParam> {};

TEST_P(RecoveryProperty, FaultDetectedAndRecoveryBounded) {
  const auto [behavior, kind, seed] = GetParam();

  Scenario scenario = kind == ScenarioKind::kAvionics ? MakeAvionicsScenario()
                                                      : MakeScadaScenario();
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound =
      kind == ScenarioKind::kAvionics ? Milliseconds(500) : Milliseconds(2000);
  config.seed = seed;

  BtrSystem system(std::move(scenario), config);
  ASSERT_TRUE(system.Plan().ok());

  // Victim: host of the primary replica of the most critical compute task.
  const Dataflow& w = system.scenario().workload;
  TaskId target;
  for (TaskId t : w.ComputeIds()) {
    if (!target.valid() || w.task(t).criticality > w.task(target).criticality) {
      target = t;
    }
  }
  const Plan* root = system.strategy().Lookup(FaultSet());
  const NodeId victim = root->placement()[system.planner().graph().PrimaryOf(target)];
  ASSERT_TRUE(victim.valid());

  const SimDuration period = w.period();
  FaultInjection injection;
  injection.node = victim;
  injection.manifest_at = 10 * period;
  injection.behavior = behavior;
  injection.delay = period / 2;
  system.AddFault(injection);

  auto report = system.Run(100);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->faults[0].first_conviction, kSimTimeNever)
      << FaultBehaviorName(behavior) << " was never detected";
  EXPECT_FALSE(report->correctness.btr_violated)
      << FaultBehaviorName(behavior) << ": recovery "
      << ToMillisF(report->correctness.max_recovery) << " ms";
}

INSTANTIATE_TEST_SUITE_P(
    AllBehaviors, RecoveryProperty,
    ::testing::Combine(::testing::Values(FaultBehavior::kCrash,
                                         FaultBehavior::kValueCorruption,
                                         FaultBehavior::kOmission, FaultBehavior::kEquivocate,
                                         FaultBehavior::kDelay),
                       ::testing::Values(ScenarioKind::kAvionics, ScenarioKind::kScada),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<RecoveryParam>& param_info) {
      std::string name = FaultBehaviorName(std::get<0>(param_info.param));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      name += std::get<1>(param_info.param) == ScenarioKind::kAvionics ? "_avionics" : "_scada";
      name += "_s" + std::to_string(std::get<2>(param_info.param));
      return name;
    });

// ---------------------------------------------------------------------------
// Property: plan invariants hold for random workloads across seeds and f.
// ---------------------------------------------------------------------------

using PlannerParam = std::tuple<uint64_t /*seed*/, uint32_t /*f*/>;

class PlannerProperty : public ::testing::TestWithParam<PlannerParam> {};

TEST_P(PlannerProperty, StrategyInvariants) {
  const auto [seed, f] = GetParam();
  Rng rng(seed);
  RandomDagParams params;
  params.period = Milliseconds(40);
  params.compute_nodes = 8;
  // Comm-light so the fault-free mode is fully schedulable: the utility
  // monotonicity check below is only a theorem when shedding is driven by
  // node loss, not by bandwidth scarcity (a degraded mode keeps fewer
  // replicas than the root and can paradoxically fit more flows otherwise).
  params.min_msg_bytes = 32;
  params.max_msg_bytes = 256;
  params.bus_bandwidth_bps = 100'000'000;
  Scenario s = MakeRandomScenario(&rng, params);
  ASSERT_TRUE(s.workload.Validate().ok());

  PlannerConfig config;
  config.max_faults = f;
  Planner planner(&s.topology, &s.workload, config);
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  const AugmentedGraph& g = planner.graph();
  for (const FaultSet& faults : strategy->PlannedSets()) {
    const Plan* plan = strategy->Lookup(faults);
    ASSERT_NE(plan, nullptr);

    // No placement on faulty nodes; replica dispersion; valid tables.
    for (uint32_t id = 0; id < g.size(); ++id) {
      if (plan->placement()[id].valid()) {
        EXPECT_FALSE(faults.Contains(plan->placement()[id]));
      }
    }
    for (const TaskSpec& t : s.workload.tasks()) {
      std::set<NodeId> used;
      for (uint32_t rep : g.ReplicasOf(t.id)) {
        if (plan->placement()[rep].valid()) {
          EXPECT_TRUE(used.insert(plan->placement()[rep]).second);
        }
      }
    }
    for (size_t n = 0; n < s.topology.node_count(); ++n) {
      EXPECT_TRUE(plan->tables()[n].Validate(s.workload.period()).ok());
    }
    // Utility is monotone: a superset of faults never increases utility.
    for (const FaultSet& smaller : strategy->PlannedSets()) {
      if (smaller.size() < faults.size() && faults.Covers(smaller)) {
        EXPECT_LE(plan->utility(), strategy->Lookup(smaller)->utility() + 1e-9)
            << faults.ToString() << " vs " << smaller.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerProperty,
                         ::testing::Combine(::testing::Range<uint64_t>(1, 9),
                                            ::testing::Values(1u, 2u)),
                         [](const ::testing::TestParamInfo<PlannerParam>& param_info) {
                           return "s" + std::to_string(std::get<0>(param_info.param)) + "_f" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

// ---------------------------------------------------------------------------
// Property: network packet conservation across random traffic.
// ---------------------------------------------------------------------------

class NetworkConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetworkConservation, SentEqualsDeliveredPlusDropped) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Topology topo = Topology::Ring(6, 2'000'000, Microseconds(5));
  Simulator sim(seed);
  NetworkConfig config;
  config.loss_probability = 0.05;
  Network net(&sim, &topo, config);
  struct Empty : Payload {};
  uint64_t receiver_count = 0;
  for (size_t i = 0; i < topo.node_count(); ++i) {
    net.SetReceiver(NodeId(static_cast<uint32_t>(i)),
                    [&receiver_count](const Packet&) { ++receiver_count; });
  }
  // One node goes down mid-run; random sends before and after.
  const NodeId down(static_cast<uint32_t>(rng.NextBelow(6)));
  sim.At(Milliseconds(50), [&net, down]() { net.SetNodeDown(down, true); });
  for (int i = 0; i < 300; ++i) {
    const NodeId src(static_cast<uint32_t>(rng.NextBelow(6)));
    NodeId dst(static_cast<uint32_t>(rng.NextBelow(6)));
    const uint32_t bytes = static_cast<uint32_t>(rng.NextInRange(16, 2048));
    const SimTime at = rng.NextInRange(0, Milliseconds(100));
    sim.At(at, [&net, src, dst, bytes]() {
      net.Send(src, dst, bytes, TrafficClass::kForeground, std::make_shared<Empty>());
    });
  }
  sim.RunToCompletion();
  const NetworkStats& stats = net.stats();
  EXPECT_EQ(stats.packets_sent,
            stats.packets_delivered + stats.packets_dropped_loss + stats.packets_dropped_down +
                stats.packets_dropped_unreachable + stats.packets_dropped_backlog);
  EXPECT_EQ(receiver_count, stats.packets_delivered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkConservation, ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Property: plant excursion is monotone in outage length (for integrating /
// unstable plants), and the binary-searched max tolerable outage really is
// the boundary.
// ---------------------------------------------------------------------------

class OutageMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(OutageMonotonicity, ExcursionMonotoneAndBoundaryTight) {
  std::unique_ptr<Plant> plant;
  std::unique_ptr<Controller> controller;
  OutageParams params;
  double hi = 60.0;
  switch (GetParam()) {
    case 0:
      plant = std::make_unique<PressureVessel>();
      controller = MakePressureController();
      break;
    case 1:
      plant = std::make_unique<InvertedPendulum>();
      controller = MakePendulumController();
      params.settle_time = 20.0;
      hi = 10.0;
      break;
    default:
      plant = std::make_unique<CruiseControl>();
      controller = MakeCruiseController();
      hi = 120.0;
      break;
  }
  double prev = -1.0;
  for (double outage = 0.0; outage <= hi / 4; outage += hi / 16) {
    params.outage = outage;
    const double exc = SimulateOutage(plant.get(), controller.get(), params).max_excursion;
    EXPECT_GE(exc, prev - 1e-6) << "excursion not monotone at outage " << outage;
    prev = exc;
  }
  const double r_max = MaxTolerableOutage(plant.get(), controller.get(), params, hi, 0.05);
  if (r_max < hi) {
    params.outage = r_max * 0.9;
    EXPECT_FALSE(SimulateOutage(plant.get(), controller.get(), params).violated);
    params.outage = r_max * 1.2 + 0.1;
    EXPECT_TRUE(SimulateOutage(plant.get(), controller.get(), params).violated);
  }
}

std::string PlantParamName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0:
      return "vessel";
    case 1:
      return "pendulum";
    default:
      return "cruise";
  }
}

INSTANTIATE_TEST_SUITE_P(Plants, OutageMonotonicity, ::testing::Values(0, 1, 2),
                         PlantParamName);

// ---------------------------------------------------------------------------
// Property: determinism — same seed, same everything.
// ---------------------------------------------------------------------------

class Determinism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Determinism, IdenticalReportsForIdenticalSeeds) {
  auto run = [&](uint64_t seed) {
    BtrConfig config;
    config.planner.max_faults = 1;
    config.planner.recovery_bound = Milliseconds(500);
    config.seed = seed;
    BtrSystem system(MakeAvionicsScenario(), config);
    EXPECT_TRUE(system.Plan().ok());
    system.AddFault(
        {NodeId(5), Milliseconds(150), FaultBehavior::kOmission, 0, NodeId::Invalid(), 0});
    auto report = system.Run(80);
    EXPECT_TRUE(report.ok());
    return std::make_tuple(report->events_executed, report->network.total_link_bytes,
                           report->correctness.correct_instances,
                           report->faults[0].first_conviction,
                           report->total_node_stats.evidence_generated);
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism, ::testing::Values(1, 7, 1234567));

}  // namespace
}  // namespace btr
