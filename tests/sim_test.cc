// Unit tests for the discrete-event engine and local clocks.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

namespace btr {
namespace {

TEST(EventQueue, DeliversInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (!q.Empty()) {
    q.RunNext();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesDeliverInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) {
    q.RunNext();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DoubleCancelIsSafe) {
  EventQueue q;
  EventHandle h = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_FALSE(q.Cancel(h));
  EXPECT_FALSE(q.Cancel(EventHandle()));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventHandle h = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(h);
  EXPECT_EQ(q.NextTime(), 20);
  EXPECT_EQ(q.PendingCount(), 1u);
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      q.Schedule(q.last_popped_time() + 10, chain);
    }
  };
  q.Schedule(0, chain);
  while (!q.Empty()) {
    q.RunNext();
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.last_popped_time(), 40);
}

TEST(EventQueue, CancelAfterFireIsRejected) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.Schedule(10, [&] { ++fired; });
  q.RunNext();
  EXPECT_EQ(fired, 1);
  // The event already ran: its generation moved on, so Cancel is a no-op.
  EXPECT_FALSE(q.Cancel(h));
  EXPECT_EQ(q.PendingCount(), 0u);
}

TEST(EventQueue, CancelTwiceSecondIsNoOp) {
  EventQueue q;
  EventHandle h = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_FALSE(q.Cancel(h));
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_EQ(q.NextTime(), 20);
}

TEST(EventQueue, SlotReuseAcrossGenerationsKeepsStaleHandlesDead) {
  EventQueue q;
  // Fire one event so its slot returns to the freelist, then schedule a new
  // event that reuses the slot. The old handle must not cancel the new event
  // (its generation is stale), and the new handle must still work.
  int first = 0;
  int second = 0;
  EventHandle old_handle = q.Schedule(10, [&] { ++first; });
  q.RunNext();
  EventHandle new_handle = q.Schedule(20, [&] { ++second; });
  EXPECT_FALSE(q.Cancel(old_handle)) << "stale handle must not cancel the reused slot";
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_TRUE(q.Cancel(new_handle));
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 0);
}

TEST(EventQueue, CancelledSlotReusePreservesInsertionOrderTieBreak) {
  EventQueue q;
  std::vector<int> order;
  // Interleave schedules and cancels at one timestamp; survivors must run
  // in their original insertion order even though slots get recycled.
  EventHandle a = q.Schedule(5, [&] { order.push_back(0); });
  q.Schedule(5, [&] { order.push_back(1); });
  q.Cancel(a);
  q.Schedule(5, [&] { order.push_back(2); });  // reuses a's slot
  q.Schedule(5, [&] { order.push_back(3); });
  while (!q.Empty()) {
    q.RunNext();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ManyGenerationsOfReuse) {
  EventQueue q;
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int round = 0; round < 100; ++round) {
    EventHandle h = q.Schedule(q.last_popped_time() + 1, [&] { ++fired; });
    if (round % 2 == 0) {
      q.Cancel(h);
    } else {
      q.RunNext();
    }
    handles.push_back(h);
  }
  EXPECT_EQ(fired, 50);
  for (EventHandle h : handles) {
    EXPECT_FALSE(q.Cancel(h));  // every generation is spent
  }
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, OversizedCaptureFallsBackToHeap) {
  // Captures beyond the inline buffer still work (heap fallback path).
  EventQueue q;
  std::array<uint64_t, 32> big{};
  big[0] = 7;
  big[31] = 9;
  uint64_t sum = 0;
  q.Schedule(1, [big, &sum] { sum = big[0] + big[31]; });
  q.RunNext();
  EXPECT_EQ(sum, 16u);
}

TEST(Simulator, NowAdvancesBeforeCallbacks) {
  Simulator sim(1);
  SimTime seen = -1;
  sim.At(100, [&] { seen = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim(1);
  SimTime seen = -1;
  sim.At(50, [&] { sim.After(25, [&] { seen = sim.Now(); }); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, 75);
}

TEST(Simulator, CallbackSchedulingAtSameTimeRuns) {
  // Regression: Now() must equal the event timestamp inside the callback so
  // that sim.After(0, ...) never lands in the past.
  Simulator sim(1);
  int fired = 0;
  sim.At(10, [&] {
    sim.At(20, [&] { ++fired; });
  });
  sim.At(15, [&] {
    sim.After(0, [&] { ++fired; });
  });
  sim.RunToCompletion();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim(1);
  int fired = 0;
  sim.At(10, [&] { ++fired; });
  sim.At(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim(1);
  int fired = 0;
  sim.At(1, [&] { ++fired; });
  sim.At(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator sim(1);
  bool fired = false;
  EventHandle h = sim.At(10, [&] { fired = true; });
  sim.Cancel(h);
  sim.RunToCompletion();
  EXPECT_FALSE(fired);
}

TEST(LocalClock, PerfectClockIsIdentity) {
  LocalClock clock;
  EXPECT_EQ(clock.Read(12345), 12345);
  EXPECT_EQ(clock.TrueTimeAt(777), 777);
}

TEST(LocalClock, OffsetShiftsReading) {
  LocalClock clock(Microseconds(5), 0.0);
  EXPECT_EQ(clock.Read(Milliseconds(1)), Milliseconds(1) + Microseconds(5));
}

TEST(LocalClock, DriftGrowsWithTime) {
  LocalClock clock(0, 100.0);  // 100 ppm fast
  const SimTime t = Seconds(10);
  EXPECT_NEAR(static_cast<double>(clock.Read(t) - t), 1e9 * 10 * 100e-6, 1.0);
}

TEST(LocalClock, TrueTimeInvertsRead) {
  LocalClock clock(Microseconds(3), 50.0);
  const SimTime t = Seconds(2);
  EXPECT_NEAR(static_cast<double>(clock.TrueTimeAt(clock.Read(t))), static_cast<double>(t), 2.0);
}

TEST(LocalClock, MaxErrorBoundsActualError) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    LocalClock clock = LocalClock::Random(&rng, Microseconds(50), 200.0);
    const SimDuration run = Seconds(5);
    const SimDuration bound = clock.MaxError(run);
    for (SimTime t = 0; t <= run; t += run / 10) {
      EXPECT_LE(std::abs(clock.Read(t) - t), bound);
    }
  }
}

}  // namespace
}  // namespace btr
