// Unit tests for the dataflow model and the scenario generators.

#include <gtest/gtest.h>

#include "src/workload/dataflow.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

Dataflow MakeDiamond() {
  // src -> a -> sink, src -> b -> sink.
  Dataflow w(Milliseconds(10));
  const TaskId src = w.AddSource("src", Microseconds(10), NodeId(0), Criticality::kHigh);
  const TaskId a = w.AddCompute("a", Microseconds(100), 0, Criticality::kHigh);
  const TaskId b = w.AddCompute("b", Microseconds(100), 128, Criticality::kLow);
  const TaskId sink = w.AddSink("sink", Microseconds(10), NodeId(1), Criticality::kHigh,
                                Milliseconds(8));
  w.Connect(src, a, 64);
  w.Connect(src, b, 64);
  w.Connect(a, sink, 64);
  w.Connect(b, sink, 64);
  return w;
}

TEST(Dataflow, ValidDiamondPasses) {
  Dataflow w = MakeDiamond();
  EXPECT_TRUE(w.Validate().ok()) << w.Validate().ToString();
}

TEST(Dataflow, TopologicalOrderRespectsEdges) {
  Dataflow w = MakeDiamond();
  const auto& order = w.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  std::vector<size_t> pos(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    pos[order[i].value()] = i;
  }
  for (const ChannelSpec& ch : w.channels()) {
    EXPECT_LT(pos[ch.from.value()], pos[ch.to.value()]);
  }
}

TEST(Dataflow, AncestorsOfSink) {
  Dataflow w = MakeDiamond();
  const TaskId sink = w.FindTask("sink");
  const auto ancestors = w.AncestorsOf(sink);
  EXPECT_EQ(ancestors.size(), 3u);  // src, a, b
}

TEST(Dataflow, ReachesSinkMask) {
  Dataflow w = MakeDiamond();
  const auto mask = w.ReachesSinkMask({w.FindTask("sink")});
  EXPECT_TRUE(mask[w.FindTask("src").value()]);
  EXPECT_TRUE(mask[w.FindTask("a").value()]);
  EXPECT_TRUE(mask[w.FindTask("sink").value()]);
  const auto empty_mask = w.ReachesSinkMask({});
  EXPECT_FALSE(empty_mask[w.FindTask("src").value()]);
}

TEST(Dataflow, FindTask) {
  Dataflow w = MakeDiamond();
  EXPECT_TRUE(w.FindTask("a").valid());
  EXPECT_FALSE(w.FindTask("nope").valid());
}

TEST(Dataflow, InputsOutputs) {
  Dataflow w = MakeDiamond();
  EXPECT_EQ(w.Inputs(w.FindTask("sink")).size(), 2u);
  EXPECT_EQ(w.Outputs(w.FindTask("src")).size(), 2u);
  EXPECT_EQ(w.Inputs(w.FindTask("src")).size(), 0u);
}

TEST(Dataflow, ValidateRejectsCycle) {
  Dataflow w(Milliseconds(10));
  const TaskId src = w.AddSource("src", 10, NodeId(0), Criticality::kLow);
  const TaskId a = w.AddCompute("a", 10, 0, Criticality::kLow);
  const TaskId b = w.AddCompute("b", 10, 0, Criticality::kLow);
  const TaskId sink = w.AddSink("sink", 10, NodeId(0), Criticality::kLow, Milliseconds(1));
  w.Connect(src, a, 8);
  w.Connect(a, b, 8);
  w.Connect(b, a, 8);  // cycle
  w.Connect(b, sink, 8);
  EXPECT_FALSE(w.Validate().ok());
}

TEST(Dataflow, ValidateRejectsUnpinnedSource) {
  Dataflow w(Milliseconds(10));
  const TaskId src = w.AddSource("src", 10, NodeId::Invalid(), Criticality::kLow);
  const TaskId sink = w.AddSink("sink", 10, NodeId(0), Criticality::kLow, Milliseconds(1));
  w.Connect(src, sink, 8);
  EXPECT_FALSE(w.Validate().ok());
}

TEST(Dataflow, ValidateRejectsDeadlineBeyondPeriod) {
  Dataflow w(Milliseconds(10));
  const TaskId src = w.AddSource("src", 10, NodeId(0), Criticality::kLow);
  const TaskId sink = w.AddSink("sink", 10, NodeId(0), Criticality::kLow, Milliseconds(11));
  w.Connect(src, sink, 8);
  EXPECT_FALSE(w.Validate().ok());
}

TEST(Dataflow, ValidateRejectsSinkWithOutputs) {
  Dataflow w(Milliseconds(10));
  const TaskId src = w.AddSource("src", 10, NodeId(0), Criticality::kLow);
  const TaskId sink = w.AddSink("sink", 10, NodeId(0), Criticality::kLow, Milliseconds(1));
  const TaskId sink2 = w.AddSink("sink2", 10, NodeId(0), Criticality::kLow, Milliseconds(1));
  w.Connect(src, sink, 8);
  w.Connect(sink, sink2, 8);
  EXPECT_FALSE(w.Validate().ok());
}

TEST(Dataflow, ValidateRejectsZeroByteChannel) {
  Dataflow w(Milliseconds(10));
  const TaskId src = w.AddSource("src", 10, NodeId(0), Criticality::kLow);
  const TaskId sink = w.AddSink("sink", 10, NodeId(0), Criticality::kLow, Milliseconds(1));
  w.Connect(src, sink, 0);
  EXPECT_FALSE(w.Validate().ok());
}

TEST(Criticality, WeightsAreMonotone) {
  EXPECT_LT(CriticalityWeight(Criticality::kBestEffort), CriticalityWeight(Criticality::kLow));
  EXPECT_LT(CriticalityWeight(Criticality::kLow), CriticalityWeight(Criticality::kMedium));
  EXPECT_LT(CriticalityWeight(Criticality::kMedium), CriticalityWeight(Criticality::kHigh));
  EXPECT_LT(CriticalityWeight(Criticality::kHigh),
            CriticalityWeight(Criticality::kSafetyCritical));
}

TEST(Criticality, SafetyCriticalDominatesAllBestEffort) {
  // One safety-critical flow outweighs any plausible count of best-effort.
  EXPECT_GT(CriticalityWeight(Criticality::kSafetyCritical),
            100 * CriticalityWeight(Criticality::kBestEffort));
}

// --- generators ---

TEST(Generators, AvionicsScenarioIsValid) {
  Scenario s = MakeAvionicsScenario();
  EXPECT_TRUE(s.topology.Validate().ok());
  EXPECT_TRUE(s.workload.Validate().ok()) << s.workload.Validate().ToString();
  EXPECT_EQ(s.workload.SinkIds().size(), 4u);
  // The flight-control chain is safety-critical.
  EXPECT_EQ(s.workload.task(s.workload.FindTask("control_law")).criticality,
            Criticality::kSafetyCritical);
}

TEST(Generators, ScadaScenarioIsValid) {
  Scenario s = MakeScadaScenario();
  EXPECT_TRUE(s.topology.Validate().ok());
  EXPECT_TRUE(s.workload.Validate().ok()) << s.workload.Validate().ToString();
  EXPECT_TRUE(s.workload.FindTask("relief_valve").valid());
}

TEST(Generators, ConvoyScenarioIsValid) {
  Scenario s = MakeConvoyScenario(5);
  EXPECT_TRUE(s.topology.Validate().ok());
  EXPECT_TRUE(s.workload.Validate().ok()) << s.workload.Validate().ToString();
  EXPECT_EQ(s.workload.SinkIds().size(), 4u);  // one throttle per follower
}

TEST(Generators, RandomScenarioIsValidAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    RandomDagParams params;
    Scenario s = MakeRandomScenario(&rng, params);
    EXPECT_TRUE(s.topology.Validate().ok()) << "seed " << seed;
    EXPECT_TRUE(s.workload.Validate().ok())
        << "seed " << seed << ": " << s.workload.Validate().ToString();
  }
}

TEST(Generators, RandomScenarioRespectsParams) {
  Rng rng(3);
  RandomDagParams params;
  params.sources = 2;
  params.sinks = 5;
  params.layers = 2;
  params.tasks_per_layer = 3;
  Scenario s = MakeRandomScenario(&rng, params);
  EXPECT_EQ(s.workload.SourceIds().size(), 2u);
  EXPECT_EQ(s.workload.SinkIds().size(), 5u);
  EXPECT_EQ(s.workload.ComputeIds().size(), 6u);
}

}  // namespace
}  // namespace btr
