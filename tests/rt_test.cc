// Unit tests for schedule tables, the list scheduler, and schedulability
// analyses.

#include <gtest/gtest.h>

#include "src/rt/analysis.h"
#include "src/rt/list_scheduler.h"
#include "src/rt/mixed_criticality.h"
#include "src/rt/schedule.h"

namespace btr {
namespace {

TEST(ScheduleTable, FindGapInEmptyTable) {
  ScheduleTable t;
  EXPECT_EQ(t.FindGap(0, 100, 1000), 0);
  EXPECT_EQ(t.FindGap(500, 100, 1000), 500);
  EXPECT_EQ(t.FindGap(950, 100, 1000), -1);
}

TEST(ScheduleTable, FindGapSkipsBusyWindows) {
  ScheduleTable t;
  t.Add(1, 100, 200);  // busy [100, 300)
  t.Add(2, 400, 100);  // busy [400, 500)
  t.SortByStart();
  EXPECT_EQ(t.FindGap(0, 100, 1000), 0);    // fits before first entry
  EXPECT_EQ(t.FindGap(0, 101, 1000), 500);  // [0,100) and [300,400) too small
  EXPECT_EQ(t.FindGap(0, 90, 1000), 0);
  EXPECT_EQ(t.FindGap(250, 100, 1000), 300);
  EXPECT_EQ(t.FindGap(450, 100, 1000), 500);
}

TEST(ScheduleTable, ValidateCatchesOverlap) {
  ScheduleTable t;
  t.Add(1, 0, 200);
  t.Add(2, 100, 100);
  t.SortByStart();
  EXPECT_FALSE(t.Validate(1000).ok());
}

TEST(ScheduleTable, ValidateCatchesOutOfPeriod) {
  ScheduleTable t;
  t.Add(1, 900, 200);
  EXPECT_FALSE(t.Validate(1000).ok());
}

TEST(ScheduleTable, UtilizationAndBusyTime) {
  ScheduleTable t;
  t.Add(1, 0, 250);
  t.Add(2, 500, 250);
  EXPECT_EQ(t.BusyTime(), 500);
  EXPECT_DOUBLE_EQ(t.Utilization(1000), 0.5);
}

TEST(ListScheduler, RespectsPrecedenceAndComm) {
  // a(node0) -> b(node1) with 50 comm delay.
  std::vector<SchedJob> jobs{
      {0, 0, 100, 0, kSimTimeNever, 0},
      {1, 1, 100, 0, kSimTimeNever, 0},
  };
  std::vector<SchedEdge> edges{{0, 1, 50}};
  ListScheduler sched(2, 1000);
  auto result = sched.Schedule(jobs, edges);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->start[0], 0);
  EXPECT_EQ(result->start[1], 150);  // a finishes at 100, +50 comm
}

TEST(ListScheduler, SameNodeDependencyHasNoCommDelay) {
  std::vector<SchedJob> jobs{
      {0, 0, 100, 0, kSimTimeNever, 0},
      {1, 0, 100, 0, kSimTimeNever, 0},
  };
  std::vector<SchedEdge> edges{{0, 1, 50}};
  ListScheduler sched(1, 1000);
  auto result = sched.Schedule(jobs, edges);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->start[1], 100);
}

TEST(ListScheduler, PacksIndependentJobsOnOneNode) {
  std::vector<SchedJob> jobs{
      {0, 0, 300, 0, kSimTimeNever, 0},
      {1, 0, 300, 0, kSimTimeNever, 0},
      {2, 0, 300, 0, kSimTimeNever, 0},
  };
  ListScheduler sched(1, 1000);
  auto result = sched.Schedule(jobs, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->makespan, 900);
  EXPECT_TRUE(result->tables[0].Validate(1000).ok());
}

TEST(ListScheduler, FailsWhenPeriodOverflows) {
  std::vector<SchedJob> jobs{
      {0, 0, 600, 0, kSimTimeNever, 0},
      {1, 0, 600, 0, kSimTimeNever, 0},
  };
  ListScheduler sched(1, 1000);
  auto result = sched.Schedule(jobs, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(ListScheduler, FailsOnMissedDeadline) {
  std::vector<SchedJob> jobs{
      {0, 0, 300, 0, kSimTimeNever, 0},
      {1, 0, 300, 0, 500, 0},  // deadline 500 but must wait for job 0
  };
  std::vector<SchedEdge> edges{{0, 1, 0}};
  ListScheduler sched(1, 1000);
  auto result = sched.Schedule(jobs, edges);
  EXPECT_FALSE(result.ok());
}

TEST(ListScheduler, EarlierDeadlineScheduledFirst) {
  std::vector<SchedJob> jobs{
      {0, 0, 300, 0, 900, 0},
      {1, 0, 300, 0, 400, 0},  // tighter deadline
  };
  ListScheduler sched(1, 1000);
  auto result = sched.Schedule(jobs, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->start[1], 0);
  EXPECT_EQ(result->start[0], 300);
}

TEST(ListScheduler, ReleaseOffsetsHonored) {
  std::vector<SchedJob> jobs{{0, 0, 100, 250, kSimTimeNever, 0}};
  ListScheduler sched(1, 1000);
  auto result = sched.Schedule(jobs, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->start[0], 250);
}

TEST(ListScheduler, DetectsCycle) {
  std::vector<SchedJob> jobs{
      {0, 0, 100, 0, kSimTimeNever, 0},
      {1, 0, 100, 0, kSimTimeNever, 0},
  };
  std::vector<SchedEdge> edges{{0, 1, 0}, {1, 0, 0}};
  ListScheduler sched(1, 1000);
  EXPECT_FALSE(sched.Schedule(jobs, edges).ok());
}

TEST(ListScheduler, GapFillingBackfillsShortJobs) {
  // Long job first, then a dependent pair, then a short independent job that
  // should slot into the gap before the dependent successor.
  std::vector<SchedJob> jobs{
      {0, 0, 400, 0, kSimTimeNever, 0},   // [0,400) on node 0
      {1, 1, 100, 0, kSimTimeNever, 0},   // [0,100) on node 1
      {2, 0, 100, 0, kSimTimeNever, 0},   // depends on 1, starts >= 100+comm
      {3, 0, 50, 0, kSimTimeNever, 1},
  };
  std::vector<SchedEdge> edges{{1, 2, 300}};
  ListScheduler sched(2, 2000);
  auto result = sched.Schedule(jobs, edges);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->start[2], 400);  // after job 0 and after comm (100+300)
  EXPECT_EQ(result->start[3], 400 + 100);
  EXPECT_TRUE(result->tables[0].Validate(2000).ok());
}

// --- analysis ---

TEST(Analysis, UtilizationSum) {
  std::vector<PeriodicTask> tasks{
      {250, 1000, 1000},
      {500, 2000, 2000},
  };
  EXPECT_DOUBLE_EQ(TotalUtilization(tasks), 0.5);
}

TEST(Analysis, RmBoundDecreasesWithN) {
  EXPECT_DOUBLE_EQ(RmUtilizationBound(1), 1.0);
  EXPECT_NEAR(RmUtilizationBound(2), 0.8284, 1e-3);
  EXPECT_GT(RmUtilizationBound(2), RmUtilizationBound(10));
  EXPECT_GT(RmUtilizationBound(100), 0.69);  // tends to ln 2
}

TEST(Analysis, EdfAcceptsFullUtilizationImplicitDeadlines) {
  std::vector<PeriodicTask> tasks{
      {500, 1000, 1000},
      {1000, 2000, 2000},
  };
  EXPECT_TRUE(EdfSchedulable(tasks));
}

TEST(Analysis, EdfRejectsOverload) {
  std::vector<PeriodicTask> tasks{
      {600, 1000, 1000},
      {900, 2000, 2000},
  };
  EXPECT_FALSE(EdfSchedulable(tasks));
}

TEST(Analysis, EdfConstrainedDeadlinesCanFailBelowFullUtilization) {
  // U = 0.75 but both deadlines are half the period and collide.
  std::vector<PeriodicTask> tasks{
      {300, 1000, 500},
      {300, 1000, 500},
  };
  EXPECT_FALSE(EdfSchedulable(tasks));
  std::vector<PeriodicTask> relaxed{
      {300, 1000, 1000},
      {300, 1000, 1000},
  };
  EXPECT_TRUE(EdfSchedulable(relaxed));
}

TEST(Analysis, ResponseTimesMatchHandComputation) {
  // Classic example: two tasks, DM order.
  std::vector<PeriodicTask> tasks{
      {200, 1000, 600},   // lower priority (longer deadline? no: 600 < ...)
      {100, 400, 400},
  };
  const auto rt = ResponseTimes(tasks);
  ASSERT_EQ(rt.size(), 2u);
  // Task 1 (deadline 400) has top priority: R = 100.
  EXPECT_EQ(rt[1], 100);
  // Task 0: R = 200 + ceil(R/400)*100 -> 300.
  EXPECT_EQ(rt[0], 300);
}

TEST(Analysis, ResponseTimesEmptyWhenUnschedulable) {
  std::vector<PeriodicTask> tasks{
      {300, 400, 350},
      {200, 400, 400},
  };
  EXPECT_TRUE(ResponseTimes(tasks).empty());
}

// --- mixed criticality ---

TEST(MixedCriticality, LoOnlyTaskSetSchedulable) {
  std::vector<McTask> tasks{
      {100, 100, 1000, 1000, false},
      {200, 200, 1000, 1000, false},
  };
  const auto result = AmcRtbAnalyze(tasks);
  EXPECT_TRUE(result.schedulable);
}

TEST(MixedCriticality, HiOverrunBudgetedInHiMode) {
  std::vector<McTask> tasks{
      {100, 300, 1000, 900, true},   // HI task triples in HI mode
      {200, 200, 1000, 1000, false},
  };
  const auto result = AmcRtbAnalyze(tasks);
  EXPECT_TRUE(result.schedulable);
  EXPECT_GT(result.response_hi[0], result.response_lo[0]);
}

TEST(MixedCriticality, UnschedulableWhenHiDemandTooHigh) {
  std::vector<McTask> tasks{
      {100, 900, 1000, 950, true},
      {100, 800, 1000, 1000, true},
  };
  EXPECT_FALSE(AmcRtbAnalyze(tasks).schedulable);
}

TEST(MixedCriticality, LoTasksOnlyInterfereUpToModeSwitch) {
  // AMC-rtb must accept this set; a naive "LO tasks keep running" analysis
  // would reject it.
  std::vector<McTask> tasks{
      {100, 480, 1000, 1000, true},
      {250, 250, 500, 500, false},
  };
  const auto amc = AmcRtbAnalyze(tasks);
  EXPECT_TRUE(amc.schedulable);
  // Naive HI-mode demand: 480 + 2*250 > 1000 would fail; AMC accounts for
  // LO tasks stopping at the switch.
  EXPECT_LE(amc.response_hi[0], 1000);
}

}  // namespace
}  // namespace btr
