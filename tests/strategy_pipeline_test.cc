// Tests for the layered strategy-compilation pipeline: wave-parallel
// building (StrategyBuilder), structural deduplication (Strategy pools),
// O(1) lookup (StrategyIndex), and dedup-preserving serialization
// (strategy_io v2).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/planner.h"
#include "src/core/strategy_builder.h"
#include "src/core/strategy_io.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

PlannerConfig Config(uint32_t f) {
  PlannerConfig config;
  config.max_faults = f;
  return config;
}

// The pre-pipeline lookup semantics: exact-match linear scan.
const Plan* LinearLookup(const Strategy& strategy, const FaultSet& faults) {
  for (const FaultSet& planned : strategy.PlannedSets()) {
    if (planned == faults) {
      return strategy.Lookup(planned);
    }
  }
  return nullptr;
}

TEST(StrategyPipeline, IndexAgreesWithLinearLookupForAllModes) {
  Scenario s = MakeAvionicsScenario();
  Planner planner(&s.topology, &s.workload, Config(2));
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  StrategyIndex index(*strategy);
  EXPECT_EQ(index.size(), strategy->mode_count());

  // Every planned fault set (f <= 2) resolves to the very same plan object.
  for (const FaultSet& faults : strategy->PlannedSets()) {
    EXPECT_EQ(index.Find(faults), LinearLookup(*strategy, faults)) << faults.ToString();
  }
  // Unplanned sets (size f + 1) miss in both.
  const size_t n = s.topology.node_count();
  for (uint32_t a = 0; a + 2 < n; ++a) {
    const FaultSet beyond({NodeId(a), NodeId(a + 1), NodeId(a + 2)});
    EXPECT_EQ(index.Find(beyond), nullptr);
    EXPECT_EQ(LinearLookup(*strategy, beyond), nullptr);
  }
}

TEST(StrategyPipeline, ParallelBuildIsIdenticalToSerial) {
  Scenario s = MakeAvionicsScenario();
  Planner planner(&s.topology, &s.workload, Config(2));

  StrategyBuilder serial_builder(&planner, 1);
  auto serial = serial_builder.Build();
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(planner.metrics().threads_used, 1u);

  StrategyBuilder parallel_builder(&planner, 4);
  auto parallel = parallel_builder.Build();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(planner.metrics().threads_used, 4u);

  ASSERT_EQ(serial->mode_count(), parallel->mode_count());
  EXPECT_EQ(serial->unique_plan_count(), parallel->unique_plan_count());
  EXPECT_EQ(serial->MemoryFootprintBytes(), parallel->MemoryFootprintBytes());
  for (const FaultSet& faults : serial->PlannedSets()) {
    const Plan* a = serial->Lookup(faults);
    const Plan* b = parallel->Lookup(faults);
    ASSERT_NE(b, nullptr) << faults.ToString();
    EXPECT_TRUE(*a->body == *b->body) << faults.ToString();
  }
}

TEST(StrategyPipeline, DedupShrinksStrategyStorage) {
  Scenario s = MakeAvionicsScenario();
  Planner planner(&s.topology, &s.workload, Config(2));
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok());

  // Sibling fault modes leave most per-node tables and edge budgets
  // untouched; pooling must store those once.
  EXPECT_LT(strategy->MemoryFootprintBytes(), strategy->ExpandedFootprintBytes());
  EXPECT_LT(strategy->DedupRatio(), 1.0);

  // The sharing is physical, not just accounted: some pair of sibling
  // modes references the same table storage for some node.
  bool shared_table_found = false;
  const std::vector<FaultSet> sets = strategy->PlannedSets();
  for (size_t i = 0; i < sets.size() && !shared_table_found; ++i) {
    for (size_t j = i + 1; j < sets.size() && !shared_table_found; ++j) {
      const Plan* a = strategy->Lookup(sets[i]);
      const Plan* b = strategy->Lookup(sets[j]);
      for (size_t node = 0; node < a->tables().size(); ++node) {
        if (a->tables()[node].SharesStorageWith(b->tables()[node])) {
          shared_table_found = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(shared_table_found);
}

TEST(StrategyPipeline, BuildMetricsReportWavesAndDedup) {
  Scenario s = MakeAvionicsScenario();
  Planner planner(&s.topology, &s.workload, Config(2));
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok());

  const PlannerMetrics metrics = planner.metrics();
  EXPECT_EQ(metrics.waves, 3u);  // levels 0, 1, 2
  EXPECT_EQ(metrics.modes_planned, strategy->mode_count());
  EXPECT_EQ(metrics.unique_plans, strategy->unique_plan_count());
  // The widest wave is level 2: C(n, 2) modes.
  const size_t n = s.topology.node_count();
  EXPECT_EQ(metrics.max_wave_modes, n * (n - 1) / 2);
  EXPECT_GE(metrics.threads_used, 1u);

  // Dedup accounting must balance: every mode either minted a new physical
  // body or hit an existing one, and the hit count is what the dedup
  // counter reports.
  EXPECT_EQ(metrics.modes_deduped + metrics.unique_plans, strategy->mode_count());
  EXPECT_EQ(metrics.modes_deduped, strategy->dedup_hits());
  // Degradation retries can only add attempts on top of one per mode.
  EXPECT_GE(metrics.schedule_attempts, metrics.modes_planned);
  const std::vector<FaultSet> planned = strategy->PlannedSets();
  EXPECT_EQ(metrics.modes_degraded,
            static_cast<size_t>(
                std::count_if(planned.begin(), planned.end(), [&](const FaultSet& faults) {
                  return !strategy->Lookup(faults)->shed_sinks().empty();
                })));

  // A fresh full build reports no incremental activity.
  EXPECT_EQ(metrics.rebuild_dirty_modes, 0u);
  EXPECT_EQ(metrics.rebuild_clean_modes, 0u);
}

TEST(StrategyPipeline, RoundTripPreservesPlanResolutionForEveryFaultSet) {
  Scenario s = MakeAvionicsScenario();
  Planner planner(&s.topology, &s.workload, Config(2));
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok());

  const std::string blob = SaveStrategy(*strategy, planner.graph(), s.topology);
  auto loaded = LoadStrategy(blob, planner.graph(), s.topology);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->mode_count(), strategy->mode_count());
  for (const FaultSet& faults : strategy->PlannedSets()) {
    const Plan* original = strategy->Lookup(faults);
    const Plan* restored = loaded->Lookup(faults);
    ASSERT_NE(restored, nullptr) << faults.ToString();
    EXPECT_TRUE(*original->body == *restored->body) << faults.ToString();
  }

  // Deduplication survives the round trip: the body pool is no larger than
  // the original, and the loaded strategy shrank the same way.
  EXPECT_EQ(loaded->unique_plan_count(), strategy->unique_plan_count());
  EXPECT_EQ(loaded->MemoryFootprintBytes(), strategy->MemoryFootprintBytes());

  // The serialized form itself is deduplicated: saving the loaded strategy
  // reproduces the blob byte for byte.
  EXPECT_EQ(SaveStrategy(*loaded, planner.graph(), s.topology), blob);
}

TEST(StrategyPipeline, ParentResolutionByCanonicalFaultSetId) {
  // Parent plans are passed by canonical fault-set lookup, so every mode's
  // parents exist and carry the parent's own fault set even when bodies are
  // shared. Verify via the stickiness invariant: with heavy stickiness, a
  // child mode keeps the placements of its parent for all tasks whose hosts
  // survive (the planner only moves what the fault forces off).
  Scenario s = MakeScadaScenario(6);
  PlannerConfig config = Config(2);
  config.weight_parent = 100.0;  // make stickiness dominate
  Planner planner(&s.topology, &s.workload, config);
  auto strategy = planner.BuildStrategy();
  ASSERT_TRUE(strategy.ok());

  size_t checked = 0;
  for (const FaultSet& faults : strategy->PlannedSets()) {
    if (faults.size() != 2) {
      continue;
    }
    const Plan* child = strategy->Lookup(faults);
    ASSERT_NE(child, nullptr);
    for (NodeId x : faults.nodes()) {
      const Plan* parent = strategy->Lookup(faults.Without(x));
      ASSERT_NE(parent, nullptr);
      EXPECT_EQ(parent->faults, faults.Without(x));  // canonical identity kept
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace btr
