// Unit tests for the plant models and the outage ("five-second rule")
// analysis.

#include <gtest/gtest.h>

#include "src/plant/models.h"
#include "src/plant/outage_analysis.h"

namespace btr {
namespace {

TEST(PidController, ProportionalResponse) {
  PidController pid(10.0, 2.0, 0.0, 0.0, -100.0, 100.0);
  EXPECT_DOUBLE_EQ(pid.Control(7.0, 0.01), 6.0);  // 2 * (10 - 7)
}

TEST(PidController, OutputClamped) {
  PidController pid(10.0, 100.0, 0.0, 0.0, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(pid.Control(0.0, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(pid.Control(20.0, 0.01), -1.0);
}

TEST(PidController, IntegralAccumulates) {
  PidController pid(1.0, 0.0, 1.0, 0.0, -10.0, 10.0);
  const double u1 = pid.Control(0.0, 1.0);
  const double u2 = pid.Control(0.0, 1.0);
  EXPECT_GT(u2, u1);
}

TEST(PidController, ResetClearsState) {
  PidController pid(1.0, 0.0, 1.0, 0.0, -10.0, 10.0);
  pid.Control(0.0, 1.0);
  pid.Reset();
  EXPECT_DOUBLE_EQ(pid.Control(0.0, 1.0), 1.0);
}

// Closed-loop stability: each plant stays near its setpoint under its
// matched controller.
template <typename PlantT>
void CheckClosedLoopStable(PlantT* plant, Controller* controller, double horizon) {
  plant->Reset();
  controller->Reset();
  const double dt = 0.001;
  const double control_period = 0.01;
  double next_control = 0.0;
  for (double t = 0.0; t < horizon; t += dt) {
    if (t >= next_control) {
      plant->SetCommand(controller->Control(plant->Observe(), control_period));
      next_control = t + control_period;
    }
    plant->Step(dt);
    ASSERT_TRUE(plant->InEnvelope()) << plant->name() << " left envelope at t=" << t;
  }
  EXPECT_LT(plant->Excursion(), 0.25) << plant->name() << " did not settle";
}

TEST(Plants, PressureVesselClosedLoopStable) {
  PressureVessel plant;
  auto pid = MakePressureController();
  CheckClosedLoopStable(&plant, pid.get(), 120.0);
}

TEST(Plants, PendulumClosedLoopStable) {
  InvertedPendulum plant;
  auto pid = MakePendulumController();
  CheckClosedLoopStable(&plant, pid.get(), 30.0);
}

TEST(Plants, CruiseClosedLoopStable) {
  CruiseControl plant;
  auto pid = MakeCruiseController();
  CheckClosedLoopStable(&plant, pid.get(), 120.0);
}

TEST(Plants, PendulumDivergesWithoutControl) {
  InvertedPendulum plant;
  plant.SetCommand(0.0);
  for (double t = 0.0; t < 5.0; t += 0.001) {
    plant.Step(0.001);
  }
  EXPECT_FALSE(plant.InEnvelope());
}

TEST(Plants, PressureRisesWithValveShut) {
  PressureVessel plant;
  plant.SetCommand(0.0);
  const double p0 = plant.Observe();
  for (double t = 0.0; t < 5.0; t += 0.001) {
    plant.Step(0.001);
  }
  EXPECT_GT(plant.Observe(), p0 + 2.0);
}

TEST(Plants, CruiseDecaysSlowlyWithoutThrottle) {
  CruiseControl plant;
  plant.SetCommand(0.0);
  for (double t = 0.0; t < 10.0; t += 0.001) {
    plant.Step(0.001);
  }
  // After 10 s the speed dropped but stayed comfortably inside the band.
  EXPECT_LT(plant.Observe(), CruiseControl::kSetpoint);
  EXPECT_TRUE(plant.InEnvelope());
}

TEST(Outage, ShortOutageTolerated) {
  PressureVessel plant;
  auto pid = MakePressureController();
  OutageParams params;
  params.outage = 1.0;
  const OutageResult result = SimulateOutage(&plant, pid.get(), params);
  EXPECT_FALSE(result.violated);
  EXPECT_TRUE(result.recovered);
}

TEST(Outage, LongOutageViolatesEnvelope) {
  PressureVessel plant;
  auto pid = MakePressureController();
  OutageParams params;
  params.outage = 30.0;  // way beyond the vessel's tolerance
  const OutageResult result = SimulateOutage(&plant, pid.get(), params);
  EXPECT_TRUE(result.violated);
}

TEST(Outage, ExcursionGrowsWithOutageLength) {
  PressureVessel plant;
  auto pid = MakePressureController();
  OutageParams params;
  params.outage = 1.0;
  const double short_exc = SimulateOutage(&plant, pid.get(), params).max_excursion;
  params.outage = 5.0;
  const double long_exc = SimulateOutage(&plant, pid.get(), params).max_excursion;
  EXPECT_GT(long_exc, short_exc);
}

TEST(Outage, MaxTolerableOrderingMatchesPlantPhysics) {
  // The unstable pendulum tolerates less than the integrating vessel, which
  // tolerates less than the self-stable cruise control.
  InvertedPendulum pendulum;
  auto pendulum_pid = MakePendulumController();
  OutageParams pparams;
  pparams.settle_time = 20.0;
  const double pendulum_r = MaxTolerableOutage(&pendulum, pendulum_pid.get(), pparams, 30.0);

  PressureVessel vessel;
  auto vessel_pid = MakePressureController();
  const double vessel_r = MaxTolerableOutage(&vessel, vessel_pid.get(), OutageParams{}, 60.0);

  CruiseControl cruise;
  auto cruise_pid = MakeCruiseController();
  const double cruise_r = MaxTolerableOutage(&cruise, cruise_pid.get(), OutageParams{}, 120.0);

  EXPECT_LT(pendulum_r, vessel_r);
  EXPECT_LT(vessel_r, cruise_r);
  // The pressure vessel is the paper's motivating example: its tolerance is
  // in the single-digit seconds — the five-second-rule regime.
  EXPECT_GT(vessel_r, 2.0);
  EXPECT_LT(vessel_r, 15.0);
}

TEST(Outage, HoldLastVsFailDefault) {
  // Holding the last (equilibrium) valve command is much safer than the
  // valve slamming shut.
  PressureVessel vessel;
  auto pid = MakePressureController();
  OutageParams hold;
  hold.mode = OutageMode::kHoldLast;
  hold.outage = 8.0;
  OutageParams fail;
  fail.mode = OutageMode::kFailDefault;
  fail.outage = 8.0;
  const double hold_exc = SimulateOutage(&vessel, pid.get(), hold).max_excursion;
  const double fail_exc = SimulateOutage(&vessel, pid.get(), fail).max_excursion;
  EXPECT_LT(hold_exc, fail_exc);
}

TEST(Outage, ZeroOutageIsAlwaysSafe) {
  InvertedPendulum pendulum;
  auto pid = MakePendulumController();
  OutageParams params;
  params.outage = 0.0;
  params.settle_time = 20.0;
  EXPECT_FALSE(SimulateOutage(&pendulum, pid.get(), params).violated);
}

}  // namespace
}  // namespace btr
