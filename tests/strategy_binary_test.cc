// v4 binary strategy format suite (src/fmt/*).
//
// Three layers of contract, mirroring the text install plane's oracle
// discipline:
//
//   1. Round trip — DecodeStrategyImage(EncodeStrategyImage(S)) == S
//      byte-for-byte for fuzzed strategies and edit streams (blobs, every
//      node slice, and patch images), and the lazy BinaryStrategyView
//      resolves the same bytes chunk by chunk.
//   2. Adversarial — truncation at every section boundary, a bit-flip
//      sweep, forged section counts/offsets (re-sealed so only the
//      structural validators can catch them), out-of-range references,
//      wrong magic, and a mismatched trailer fingerprint must all reject
//      with a clean Status and, driven through InstallEngine, leave the
//      installed state bit-identical (StateFingerprint).
//   3. End-to-end — BuildStrategyUpdate's bulk slice renderers are
//      byte-equal to the per-node primitives, wire=v4 runs report the
//      same installed fingerprints as v2 text, and a run on a
//      v4-mapped strategy reports byte-identically to the planned and
//      v2-loaded runs.

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/core/btr_system.h"
#include "src/core/planner.h"
#include "src/core/runtime.h"
#include "src/core/strategy_builder.h"
#include "src/core/strategy_delta.h"
#include "src/core/strategy_io.h"
#include "src/core/strategy_patch.h"
#include "src/fmt/binary_image.h"
#include "src/fmt/strategy_binary.h"
#include "src/spec/experiment_runner.h"
#include "src/spec/experiment_spec.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

struct System {
  Topology topo;
  Dataflow workload{Milliseconds(10)};
  std::unique_ptr<Planner> planner;

  void MakePlanner(const PlannerConfig& config) {
    planner = std::make_unique<Planner>(&topo, &workload, config);
  }
};

PlannerConfig SmallConfig(uint32_t f) {
  PlannerConfig config;
  config.max_faults = f;
  config.planner_threads = 2;
  return config;
}

std::string Blob(const Strategy& strategy, const Planner& planner) {
  return SaveStrategy(strategy, planner.graph(), planner.topology());
}

System* MakeBaseSystem(std::deque<System>* generations, const PlannerConfig& config,
                       uint64_t seed = 7) {
  Rng rng(seed);
  RandomDagParams params;
  params.compute_nodes = 4;
  params.layers = 2;
  params.tasks_per_layer = 3;
  Scenario s = MakeRandomScenario(&rng, params);
  System& sys = generations->emplace_back();
  sys.topo = std::move(s.topology);
  sys.workload = std::move(s.workload);
  sys.topo.AddLink({NodeId(2), NodeId(3)}, 25'000'000, Microseconds(2), "xlink");
  sys.MakePlanner(config);
  return &sys;
}

// Round-trips one canonical text through the image codec and the lazy
// view; returns how many distinct serializations were checked.
size_t CheckRoundTrip(const std::string& text, const char* label) {
  auto image = fmt::EncodeStrategyImage(text);
  if (!image.ok()) {
    ADD_FAILURE() << label << ": encode failed: " << image.status().ToString();
    return 0;
  }
  EXPECT_TRUE(fmt::IsV4Image(*image)) << label;
  EXPECT_TRUE(fmt::ValidateStrategyImage(*image).ok()) << label;
  auto decoded = fmt::DecodeStrategyImage(*image);
  if (!decoded.ok()) {
    ADD_FAILURE() << label << ": decode failed: " << decoded.status().ToString();
    return 0;
  }
  EXPECT_EQ(*decoded, text) << label << ": decode(encode(S)) diverged";

  auto view = fmt::BinaryStrategyView::Map(*image);
  if (!view.ok()) {
    ADD_FAILURE() << label << ": map failed: " << view.status().ToString();
    return 0;
  }
  EXPECT_EQ(view->text_fingerprint(), FingerprintStrategyText(text)) << label;
  auto lazy = view->DecodeText();
  if (!lazy.ok()) {
    ADD_FAILURE() << label << ": view decode failed: " << lazy.status().ToString();
    return 0;
  }
  EXPECT_EQ(*lazy, text) << label << ": lazy view decode diverged";
  return 1;
}

// --- round trip -------------------------------------------------------------

TEST(StrategyBinary, BlobSlicesAndPatchesRoundTrip) {
  const PlannerConfig config = SmallConfig(2);
  std::deque<System> generations;
  System* sys = MakeBaseSystem(&generations, config);
  StrategyBuilder builder(sys->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();
  const std::string blob = Blob(*strategy, *sys->planner);

  CheckRoundTrip(blob, "blob");
  for (uint32_t n = 0; n < sys->topo.node_count(); ++n) {
    auto slice = ExtractSlice(blob, n);
    ASSERT_TRUE(slice.ok());
    const std::string label = "slice " + std::to_string(n);
    CheckRoundTrip(*slice, label.c_str());

    // The binary twin carves the same slice, packed.
    auto slice_image = fmt::ExtractSliceImage(blob, n);
    ASSERT_TRUE(slice_image.ok()) << slice_image.status().ToString();
    auto back = fmt::DecodeStrategyImage(*slice_image);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, *slice) << label;
    auto view = fmt::BinaryStrategyView::Map(*slice_image);
    ASSERT_TRUE(view.ok());
    EXPECT_TRUE(view->is_slice());
    EXPECT_EQ(view->node(), n);
    EXPECT_EQ(view->slice_sfp(), FingerprintStrategyText(blob));
  }

  // Patch image: diff the blob against an edited generation.
  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("xlink"));
  System& next = generations.emplace_back();
  ASSERT_TRUE(ApplyDelta(sys->topo, sys->workload, delta, &next.topo, &next.workload).ok());
  next.MakePlanner(config);
  StrategyBuilder next_builder(next.planner.get(), config.planner_threads);
  auto next_strategy = next_builder.Build();
  ASSERT_TRUE(next_strategy.ok());
  const std::string target = Blob(*next_strategy, *next.planner);

  auto patch = MakeStrategyPatch(blob, target);
  ASSERT_TRUE(patch.ok());
  const std::string patch_text = SaveStrategyPatch(*patch);
  auto patch_image = fmt::MakeStrategyPatchImage(blob, target);
  ASSERT_TRUE(patch_image.ok()) << patch_image.status().ToString();
  auto decoded_patch = fmt::DecodePatchImage(*patch_image);
  ASSERT_TRUE(decoded_patch.ok()) << decoded_patch.status().ToString();
  EXPECT_EQ(SaveStrategyPatch(*decoded_patch), patch_text)
      << "patch image did not round-trip to its BTRPATCH text";
  // A patch image maps only through DecodePatchImage.
  EXPECT_FALSE(fmt::BinaryStrategyView::Map(*patch_image).ok());
  EXPECT_FALSE(fmt::DecodeStrategyImage(*patch_image).ok());
}

TEST(StrategyBinary, BodyChunksResolveLazilyAndMatchTheText) {
  const PlannerConfig config = SmallConfig(2);
  std::deque<System> generations;
  System* sys = MakeBaseSystem(&generations, config);
  StrategyBuilder builder(sys->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok());
  const std::string blob = Blob(*strategy, *sys->planner);

  auto image = fmt::EncodeStrategyImage(blob);
  ASSERT_TRUE(image.ok());
  auto view = fmt::BinaryStrategyView::Map(*image);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->is_slice());
  ASSERT_GT(view->body_count(), 0u);
  EXPECT_GT(view->mode_count(), 0u);

  // Every chunk the view hands out must appear verbatim in the text blob
  // (bodies are stored by the text format as verbatim chunks), resolved in
  // reverse id order so deep delta chains exercise the memoized walk.
  for (uint64_t id = view->body_count(); id-- > 0;) {
    auto chunk = view->BodyChunk(id);
    ASSERT_TRUE(chunk.ok()) << "body " << id << ": " << chunk.status().ToString();
    EXPECT_NE(blob.find(*chunk), std::string::npos)
        << "body " << id << " chunk not found verbatim in the blob";
  }
  EXPECT_EQ(view->body_count() + 0u, view->body_count());
  auto text = view->DecodeText();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, blob);
}

// Fuzzed oracle: random edit streams over random systems; every blob,
// every node slice, and the inter-generation patch image must round-trip.
TEST(StrategyBinary, FuzzedEditStreamsRoundTrip) {
  constexpr int kSeeds = 8;
  constexpr int kEditsPerSeed = 4;
  size_t checked = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const PlannerConfig config = SmallConfig(1 + seed % 2);
    std::deque<System> generations;
    System* sys = MakeBaseSystem(&generations, config, 11 + seed * 7);
    StrategyBuilder builder(sys->planner.get(), config.planner_threads);
    auto strategy = builder.Build();
    if (!strategy.ok()) {
      continue;
    }
    std::string blob = Blob(*strategy, *sys->planner);
    checked += CheckRoundTrip(blob, "fuzz blob");
    for (uint32_t n = 0; n < sys->topo.node_count(); ++n) {
      auto slice = ExtractSlice(blob, n);
      ASSERT_TRUE(slice.ok());
      checked += CheckRoundTrip(*slice, "fuzz slice");
    }

    Rng rng(1000 + static_cast<uint64_t>(seed));
    const System* current = sys;
    int stamp = 0;
    for (int step = 0; step < kEditsPerSeed; ++step) {
      StrategyDelta delta;
      switch (rng.NextBelow(3)) {
        case 0: {
          const std::string name = "fz" + std::to_string(seed) + "_" + std::to_string(stamp++);
          const uint32_t a = static_cast<uint32_t>(rng.NextBelow(current->topo.node_count()));
          const uint32_t b = (a + 1 + static_cast<uint32_t>(rng.NextBelow(
                                          current->topo.node_count() - 1))) %
                             static_cast<uint32_t>(current->topo.node_count());
          delta.edits.push_back(DeltaEdit::LinkAdd(
              name, {NodeId(a), NodeId(b)},
              10'000'000 + static_cast<int64_t>(rng.NextBelow(40'000'000)),
              Microseconds(static_cast<int64_t>(rng.NextBelow(5)) + 1)));
          break;
        }
        case 1: {
          const LinkSpec& link = current->topo.link(
              LinkId(static_cast<uint32_t>(rng.NextBelow(current->topo.link_count()))));
          delta.edits.push_back(DeltaEdit::LinkLatencyChange(
              link.name, std::max<int64_t>(1'000'000, link.bandwidth_bps / 2), -1));
          break;
        }
        default: {
          const std::vector<TaskSpec>& tasks = current->workload.tasks();
          const TaskSpec& task = tasks[rng.NextBelow(tasks.size())];
          delta.edits.push_back(DeltaEdit::TaskReweight(
              task.name, static_cast<Criticality>(rng.NextBelow(kCriticalityLevels))));
          break;
        }
      }
      System& next = generations.emplace_back();
      if (!ApplyDelta(current->topo, current->workload, delta, &next.topo, &next.workload)
               .ok()) {
        generations.pop_back();
        continue;
      }
      next.MakePlanner(config);
      StrategyBuilder next_builder(next.planner.get(), config.planner_threads);
      auto next_strategy = next_builder.Build();
      if (!next_strategy.ok()) {
        break;
      }
      const std::string next_blob = Blob(*next_strategy, *next.planner);
      checked += CheckRoundTrip(next_blob, "fuzz edited blob");
      for (uint32_t n = 0; n < next.topo.node_count(); ++n) {
        auto slice = ExtractSlice(next_blob, n);
        ASSERT_TRUE(slice.ok());
        checked += CheckRoundTrip(*slice, "fuzz edited slice");
      }
      auto patch_image = fmt::MakeStrategyPatchImage(blob, next_blob);
      ASSERT_TRUE(patch_image.ok()) << patch_image.status().ToString();
      auto patch = MakeStrategyPatch(blob, next_blob);
      ASSERT_TRUE(patch.ok());
      auto decoded = fmt::DecodePatchImage(*patch_image);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(SaveStrategyPatch(*decoded), SaveStrategyPatch(*patch));
      ++checked;
      blob = next_blob;
      current = &next;
    }
  }
  // The oracle only means something at volume: strategies, slices, and
  // patches across seeds and edit streams.
  EXPECT_GE(checked, 200u);
}

// --- v2 interchange ---------------------------------------------------------

TEST(StrategyBinary, SaveV4LoadsBackAndRecordsSourceFormat) {
  const PlannerConfig config = SmallConfig(2);
  std::deque<System> generations;
  System* sys = MakeBaseSystem(&generations, config);
  StrategyBuilder builder(sys->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok());
  const std::string v2 = Blob(*strategy, *sys->planner);

  auto v4 = SaveStrategyV4(*strategy, sys->planner->graph(), sys->topo);
  ASSERT_TRUE(v4.ok()) << v4.status().ToString();
  EXPECT_TRUE(fmt::IsV4Image(*v4));

  auto from_v2 = LoadStrategy(v2, sys->planner->graph(), sys->topo);
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  EXPECT_EQ(from_v2->provenance().source_format, 2u);
  auto from_v4 = LoadStrategy(*v4, sys->planner->graph(), sys->topo);
  ASSERT_TRUE(from_v4.ok()) << from_v4.status().ToString();
  EXPECT_EQ(from_v4->provenance().source_format, 4u);

  // Either load re-serializes to the same canonical v2 text.
  EXPECT_EQ(Blob(*from_v2, *sys->planner), v2);
  EXPECT_EQ(Blob(*from_v4, *sys->planner), v2);
}

// --- adversarial ------------------------------------------------------------

struct ImageFixture {
  std::deque<System> generations;
  PlannerConfig config = SmallConfig(1);
  std::string blob;           // canonical v2 text
  std::string blob_image;     // v4 image of the blob
  std::string slice0;         // node 0's text slice
  std::string slice0_image;   // v4 image of node 0's slice
  uint64_t blob_fp = 0;

  ImageFixture() {
    System* sys = MakeBaseSystem(&generations, config);
    StrategyBuilder builder(sys->planner.get(), config.planner_threads);
    auto strategy = builder.Build();
    EXPECT_TRUE(strategy.ok());
    blob = Blob(*strategy, *sys->planner);
    blob_fp = FingerprintStrategyText(blob);
    auto image = fmt::EncodeStrategyImage(blob);
    EXPECT_TRUE(image.ok());
    blob_image = std::move(*image);
    auto slice = ExtractSlice(blob, 0);
    EXPECT_TRUE(slice.ok());
    slice0 = std::move(*slice);
    auto slice_image = fmt::EncodeStrategyImage(slice0);
    EXPECT_TRUE(slice_image.ok());
    slice0_image = std::move(*slice_image);
  }

  // A fresh engine with node 0's slice image installed.
  InstallEngine EngineFor0() const {
    InstallEngine engine{NodeId(0)};
    EXPECT_TRUE(engine.InstallFull(slice0_image, blob_fp).ok());
    return engine;
  }
};

// Recomputes the trailing seal so forged structural fields survive the
// integrity check and must be caught by the validators proper.
void Reseal(std::string* image) {
  ASSERT_GE(image->size(), 8u);
  const uint64_t seal = HashBytes(image->data(), image->size() - 8);
  for (int i = 0; i < 8; ++i) {
    (*image)[image->size() - 8 + static_cast<size_t>(i)] =
        static_cast<char>((seal >> (8 * i)) & 0xff);
  }
}

uint64_t ReadFixed64At(const std::string& image, size_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(image[at + static_cast<size_t>(i)]))
         << (8 * i);
  }
  return v;
}

void WriteFixed64At(std::string* image, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*image)[at + static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

// Expects the image to be rejected by every consumer, and by an engine
// holding installed state, without mutating that state.
void ExpectRejectedEverywhere(const ImageFixture& fx, const std::string& corrupt,
                              const char* label) {
  EXPECT_FALSE(fmt::ValidateStrategyImage(corrupt).ok()) << label;
  EXPECT_FALSE(fmt::DecodeStrategyImage(corrupt).ok()) << label;
  EXPECT_FALSE(fmt::BinaryStrategyView::Map(corrupt).ok()) << label;

  InstallEngine engine = fx.EngineFor0();
  const uint64_t before = engine.StateFingerprint();
  EXPECT_FALSE(engine.InstallFull(corrupt, fx.blob_fp).ok()) << label;
  EXPECT_EQ(engine.StateFingerprint(), before)
      << label << ": rejected install mutated engine state";
}

TEST(StrategyBinaryCorruption, TruncationAtEverySectionBoundary) {
  ImageFixture fx;
  // Section offsets live in the table at bytes 24 + i*24 (+8 for offset).
  std::vector<size_t> cuts = {0, 1, 7, 8, fmt::kHeaderBytes - 1, fmt::kHeaderBytes};
  for (uint32_t i = 0; i < fmt::kSectionCount; ++i) {
    const size_t entry = 24 + i * fmt::kSectionEntryBytes;
    const uint64_t offset = ReadFixed64At(fx.slice0_image, entry + 8);
    const uint64_t size = ReadFixed64At(fx.slice0_image, entry + 16);
    cuts.push_back(static_cast<size_t>(offset));
    cuts.push_back(static_cast<size_t>(offset) + 1);
    cuts.push_back(static_cast<size_t>(offset + size) - 1);
    cuts.push_back(static_cast<size_t>(offset + size));
  }
  cuts.push_back(fx.slice0_image.size() - 9);
  cuts.push_back(fx.slice0_image.size() - 1);
  for (size_t cut : cuts) {
    if (cut >= fx.slice0_image.size()) {
      continue;  // a section ending at image size is not a truncation
    }
    const std::string corrupt = fx.slice0_image.substr(0, cut);
    ExpectRejectedEverywhere(fx, corrupt,
                             ("truncated at " + std::to_string(cut)).c_str());
  }
}

TEST(StrategyBinaryCorruption, BitFlipSweepNeverInstalls) {
  ImageFixture fx;
  // Every byte, one flipped bit each (rotating bit position): the seal
  // catches all of them except flips inside the seal itself, which fail
  // the seal comparison instead. No re-seal here — this is the transit-
  // corruption model.
  size_t rejected = 0;
  for (size_t i = 0; i < fx.slice0_image.size(); ++i) {
    std::string corrupt = fx.slice0_image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << (i % 8)));
    InstallEngine engine = fx.EngineFor0();
    const uint64_t before = engine.StateFingerprint();
    const bool accepted = engine.InstallFull(corrupt, fx.blob_fp).ok();
    EXPECT_FALSE(accepted) << "bit flip at byte " << i << " was installed";
    if (!accepted) {
      ++rejected;
      EXPECT_EQ(engine.StateFingerprint(), before) << "byte " << i;
    }
    // The blob decoder must reject it too (never crash).
    EXPECT_FALSE(fmt::DecodeStrategyImage(corrupt).ok()) << "byte " << i;
  }
  EXPECT_EQ(rejected, fx.slice0_image.size());
}

TEST(StrategyBinaryCorruption, WrongMagicAndKind) {
  ImageFixture fx;
  std::string corrupt = fx.slice0_image;
  corrupt[0] = 'X';
  Reseal(&corrupt);  // even re-sealed, the magic check rejects it
  ExpectRejectedEverywhere(fx, corrupt, "wrong magic");

  // Kind forged from slice to blob (re-sealed): the shell parses the META
  // section under the wrong grammar or the engine refuses a non-slice.
  std::string forged_kind = fx.slice0_image;
  forged_kind[8] = static_cast<char>(fmt::kKindBlob);
  Reseal(&forged_kind);
  InstallEngine engine = fx.EngineFor0();
  const uint64_t before = engine.StateFingerprint();
  EXPECT_FALSE(engine.InstallFull(forged_kind, fx.blob_fp).ok());
  EXPECT_EQ(engine.StateFingerprint(), before);

  // Kind byte outside the known set.
  std::string bad_kind = fx.slice0_image;
  bad_kind[8] = 9;
  Reseal(&bad_kind);
  ExpectRejectedEverywhere(fx, bad_kind, "unknown kind");
}

TEST(StrategyBinaryCorruption, ForgedSectionTable) {
  ImageFixture fx;
  for (uint32_t i = 0; i < fmt::kSectionCount; ++i) {
    const size_t entry = 24 + i * fmt::kSectionEntryBytes;
    {
      std::string forged = fx.slice0_image;  // offset pushed past the end
      WriteFixed64At(&forged, entry + 8, forged.size() + 64);
      Reseal(&forged);
      ExpectRejectedEverywhere(fx, forged,
                               ("forged offset, section " + std::to_string(i)).c_str());
    }
    {
      std::string forged = fx.slice0_image;  // size inflated past the end
      const uint64_t size = ReadFixed64At(forged, entry + 16);
      WriteFixed64At(&forged, entry + 16, size + forged.size());
      Reseal(&forged);
      ExpectRejectedEverywhere(fx, forged,
                               ("forged size, section " + std::to_string(i)).c_str());
    }
    {
      std::string forged = fx.slice0_image;  // misaligned offset
      const uint64_t offset = ReadFixed64At(forged, entry + 8);
      WriteFixed64At(&forged, entry + 8, offset + 1);
      Reseal(&forged);
      ExpectRejectedEverywhere(fx, forged,
                               ("misaligned offset, section " + std::to_string(i)).c_str());
    }
  }
  // Forged image-size field (header offset 16).
  std::string forged = fx.slice0_image;
  WriteFixed64At(&forged, 16, forged.size() - 8);
  Reseal(&forged);
  ExpectRejectedEverywhere(fx, forged, "forged image size");
}

TEST(StrategyBinaryCorruption, ResealedPayloadForgerySweepNeverCrashes) {
  ImageFixture fx;
  // Adversary model upgrade over the bit-flip sweep: overwrite one payload
  // byte at a time and RE-SEAL, so the integrity check passes and the
  // forgery reaches the section validators — out-of-range dictionary /
  // parent / mode refs, truncated varints, non-minimal encodings, forged
  // counts. Three clean outcomes are allowed, and nothing else:
  //   - structural/grammar validation rejects it (engine refuses, state
  //     bit-identical);
  //   - it survives validation but the forged content is caught by the
  //     trailer text fingerprint the moment text is materialized (a
  //     self-consistent forgery is outside the corruption model the
  //     fingerprints defend — see docs/strategy_format.md — but it must
  //     still fail *cleanly*, never silently yield wrong text);
  //   - the byte was semantically inert and the image still decodes to the
  //     exact original text.
  size_t rejected = 0;
  size_t forged_content = 0;
  size_t benign = 0;
  for (size_t i = fmt::kHeaderBytes; i + 8 < fx.slice0_image.size(); ++i) {
    std::string forged = fx.slice0_image;
    if (static_cast<unsigned char>(forged[i]) == 0xFF) {
      continue;
    }
    forged[i] = static_cast<char>(0xFF);
    Reseal(&forged);
    const bool valid = fmt::ValidateStrategyImage(forged).ok();
    auto decoded = fmt::DecodeStrategyImage(forged);
    if (!valid) {
      ++rejected;
      EXPECT_FALSE(decoded.ok()) << "byte " << i << ": invalid image decoded";
      InstallEngine engine = fx.EngineFor0();
      const uint64_t before = engine.StateFingerprint();
      EXPECT_FALSE(engine.InstallFull(forged, fx.blob_fp).ok()) << "byte " << i;
      EXPECT_EQ(engine.StateFingerprint(), before) << "byte " << i;
    } else if (!decoded.ok()) {
      ++forged_content;
      auto view = fmt::BinaryStrategyView::Map(forged);
      if (view.ok()) {
        EXPECT_FALSE(view->DecodeText().ok()) << "byte " << i;
      }
    } else {
      ++benign;
      EXPECT_EQ(*decoded, fx.slice0) << "byte " << i << " forged text undetected";
    }
  }
  // The sweep only means something if the validators did real work.
  EXPECT_GT(rejected, 0u);
  SUCCEED() << rejected << " rejected, " << forged_content << " fingerprint-caught, "
            << benign << " benign";
}

TEST(StrategyBinaryCorruption, MismatchedTrailerFingerprint) {
  ImageFixture fx;
  // The trailer's text fingerprint lives in its last 16..9 bytes (fixed64
  // before the 8-byte seal). Forge it and re-seal: the image is
  // structurally perfect, so only the decode-time text hash can catch it.
  std::string forged = fx.slice0_image;
  const size_t text_fp_at = forged.size() - 16;
  WriteFixed64At(&forged, text_fp_at, ReadFixed64At(forged, text_fp_at) ^ 1);
  Reseal(&forged);
  EXPECT_FALSE(fmt::DecodeStrategyImage(forged).ok());
  auto view = fmt::BinaryStrategyView::Map(forged);
  if (view.ok()) {
    EXPECT_FALSE(view->DecodeText().ok());
  }
  // The engine may map it (the chain fingerprint in META is intact — this
  // is forgery, not corruption, and the fingerprint chain's contract is
  // corruption), but a later patch against it must fail cleanly without
  // mutating state.
  InstallEngine engine = fx.EngineFor0();
  const uint64_t before = engine.StateFingerprint();
  if (engine.InstallFull(forged, fx.blob_fp).ok()) {
    const uint64_t installed = engine.StateFingerprint();
    auto patch = MakeStrategyPatch(fx.blob, fx.blob);
    ASSERT_TRUE(patch.ok());
    auto sliced = SaveStrategyPatchSlice(*patch, 0);
    ASSERT_TRUE(sliced.ok());
    EXPECT_FALSE(engine.ApplyPatch(*sliced).ok());
    EXPECT_EQ(engine.StateFingerprint(), installed);
  } else {
    EXPECT_EQ(engine.StateFingerprint(), before);
  }
}

TEST(StrategyBinaryCorruption, WrongNodeAndWrongChainReject) {
  ImageFixture fx;
  // Node 1's slice image refused by node 0's engine.
  auto slice1 = fmt::ExtractSliceImage(fx.blob, 1);
  ASSERT_TRUE(slice1.ok());
  InstallEngine engine = fx.EngineFor0();
  const uint64_t before = engine.StateFingerprint();
  EXPECT_FALSE(engine.InstallFull(*slice1, fx.blob_fp).ok());
  EXPECT_EQ(engine.StateFingerprint(), before);
  // The right slice against the wrong expected chain fingerprint.
  EXPECT_FALSE(engine.InstallFull(fx.slice0_image, fx.blob_fp ^ 1).ok());
  EXPECT_EQ(engine.StateFingerprint(), before);
  // A full-blob image is not installable as a slice.
  EXPECT_FALSE(engine.InstallFull(fx.blob_image, fx.blob_fp).ok());
  EXPECT_EQ(engine.StateFingerprint(), before);
}

TEST(StrategyBinaryCorruption, PatchImageSweepNeverAppliesPartially) {
  ImageFixture fx;
  // Build a real patch image, then drive truncations and flips through
  // ApplyPatch on an engine that already holds the base slice image.
  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("xlink"));
  System& next = fx.generations.emplace_back();
  const System& base_sys = fx.generations.front();
  ASSERT_TRUE(ApplyDelta(base_sys.topo, base_sys.workload, delta, &next.topo, &next.workload)
                  .ok());
  next.MakePlanner(fx.config);
  StrategyBuilder builder(next.planner.get(), fx.config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok());
  const std::string target = Blob(*strategy, *next.planner);
  auto patch = MakeStrategyPatch(fx.blob, target);
  ASSERT_TRUE(patch.ok());
  auto patch_slice = MakeStrategyPatchSlice(*patch, 0);
  ASSERT_TRUE(patch_slice.ok());
  auto patch_image = fmt::EncodePatchImage(*patch_slice);
  ASSERT_TRUE(patch_image.ok()) << patch_image.status().ToString();

  // The intact image applies; the engine ends on the target chain.
  {
    InstallEngine engine = fx.EngineFor0();
    ASSERT_TRUE(engine.ApplyPatch(*patch_image).ok());
    EXPECT_EQ(engine.strategy_fingerprint(), FingerprintStrategyText(target));
    auto expect = ExtractSlice(target, 0);
    ASSERT_TRUE(expect.ok());
    EXPECT_EQ(engine.slice(), *expect);
  }
  // Corrupted copies never do.
  for (size_t i = 0; i < patch_image->size(); i += 7) {
    std::string corrupt = *patch_image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x10);
    InstallEngine engine = fx.EngineFor0();
    const uint64_t before = engine.StateFingerprint();
    EXPECT_FALSE(engine.ApplyPatch(corrupt).ok()) << "flip at " << i;
    EXPECT_EQ(engine.StateFingerprint(), before) << "flip at " << i;
  }
  for (size_t cut : {size_t{0}, size_t{8}, patch_image->size() / 2, patch_image->size() - 1}) {
    const std::string corrupt = patch_image->substr(0, cut);
    InstallEngine engine = fx.EngineFor0();
    const uint64_t before = engine.StateFingerprint();
    EXPECT_FALSE(engine.ApplyPatch(corrupt).ok()) << "cut at " << cut;
    EXPECT_EQ(engine.StateFingerprint(), before) << "cut at " << cut;
  }
}

// --- bulk slice rendering (the O(blob + slices) fix) ------------------------

TEST(StrategyBinary, BulkSliceRenderersMatchPerNodePrimitives) {
  const PlannerConfig config = SmallConfig(2);
  std::deque<System> generations;
  System* sys = MakeBaseSystem(&generations, config);
  StrategyBuilder builder(sys->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok());
  const std::string base = Blob(*strategy, *sys->planner);

  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("xlink"));
  delta.edits.push_back(DeltaEdit::TaskReweight("snk0", Criticality::kSafetyCritical));
  System& next = generations.emplace_back();
  ASSERT_TRUE(ApplyDelta(sys->topo, sys->workload, delta, &next.topo, &next.workload).ok());
  next.MakePlanner(config);
  StrategyBuilder next_builder(next.planner.get(), config.planner_threads);
  auto next_strategy = next_builder.Build();
  ASSERT_TRUE(next_strategy.ok());
  const std::string target = Blob(*next_strategy, *next.planner);

  auto update = BuildStrategyUpdate(base, target);
  ASSERT_TRUE(update.ok());
  auto patch = MakeStrategyPatch(base, target);
  ASSERT_TRUE(patch.ok());

  // The bulk renderers inside BuildStrategyUpdate must be byte-equal to
  // the per-node primitives they replaced.
  for (uint32_t n = 0; n < next.topo.node_count(); ++n) {
    auto base_slice = ExtractSlice(base, n);
    auto full_slice = ExtractSlice(target, n);
    auto patch_slice_text = SaveStrategyPatchSlice(*patch, n);
    ASSERT_TRUE(base_slice.ok() && full_slice.ok() && patch_slice_text.ok());
    EXPECT_EQ(update->base_slices[n], *base_slice) << "node " << n;
    EXPECT_EQ(update->full_slices[n], *full_slice) << "node " << n;
    EXPECT_EQ(update->patch_slices[n], *patch_slice_text) << "node " << n;
    EXPECT_EQ(update->slice_fps[n], FingerprintStrategyText(*full_slice)) << "node " << n;
  }
  EXPECT_EQ(update->target_blob_fp, update->target_fp);  // v2: same bytes
}

TEST(StrategyBinary, V4UpdateShipsImagesWithMatchingFingerprints) {
  const PlannerConfig config = SmallConfig(1);
  std::deque<System> generations;
  System* sys = MakeBaseSystem(&generations, config);
  StrategyBuilder builder(sys->planner.get(), config.planner_threads);
  auto strategy = builder.Build();
  ASSERT_TRUE(strategy.ok());
  const std::string base = Blob(*strategy, *sys->planner);

  StrategyDelta delta;
  delta.edits.push_back(DeltaEdit::LinkRemove("xlink"));
  System& next = generations.emplace_back();
  ASSERT_TRUE(ApplyDelta(sys->topo, sys->workload, delta, &next.topo, &next.workload).ok());
  next.MakePlanner(config);
  StrategyBuilder next_builder(next.planner.get(), config.planner_threads);
  auto next_strategy = next_builder.Build();
  ASSERT_TRUE(next_strategy.ok());
  const std::string target = Blob(*next_strategy, *next.planner);

  auto v2 = BuildStrategyUpdate(base, target, StrategyWireFormat::kV2Text);
  auto v4 = BuildStrategyUpdate(base, target, StrategyWireFormat::kV4Binary);
  ASSERT_TRUE(v2.ok() && v4.ok());

  // The text-domain identity chain is format-invariant.
  EXPECT_EQ(v4->base_fp, v2->base_fp);
  EXPECT_EQ(v4->target_fp, v2->target_fp);
  // Shipped artifacts are images, content-fingerprinted as shipped bytes.
  EXPECT_TRUE(fmt::IsV4Image(v4->target_blob));
  EXPECT_TRUE(fmt::IsV4Image(v4->patch_full));
  EXPECT_EQ(v4->target_blob_fp, FingerprintStrategyText(v4->target_blob));
  EXPECT_EQ(v4->patch_full_fp, FingerprintStrategyText(v4->patch_full));
  for (uint32_t n = 0; n < v4->full_slices.size(); ++n) {
    EXPECT_TRUE(fmt::IsV4Image(v4->full_slices[n])) << n;
    EXPECT_TRUE(fmt::IsV4Image(v4->patch_slices[n])) << n;
    EXPECT_EQ(v4->slice_fps[n], FingerprintStrategyText(v4->full_slices[n])) << n;
    // Base slices describe the installed (text) state either way.
    EXPECT_EQ(v4->base_slices[n], v2->base_slices[n]) << n;
    // The image decodes to exactly the v2 slice text.
    auto decoded = fmt::DecodeStrategyImage(v4->full_slices[n]);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v2->full_slices[n]) << n;
  }

  // Engines ride the v4 artifacts to the same end state as v2 text.
  for (uint32_t n = 0; n < v4->full_slices.size(); ++n) {
    InstallEngine patched{NodeId(n)};
    ASSERT_TRUE(patched.InstallFull(v4->base_slices[n], v4->base_fp).ok());
    ASSERT_TRUE(patched.ApplyPatch(v4->patch_slices[n]).ok()) << "node " << n;
    EXPECT_EQ(patched.strategy_fingerprint(), v4->target_fp);
    EXPECT_EQ(patched.slice(), v2->full_slices[n]) << "node " << n;
    EXPECT_GT(patched.stats().image_installs, 0u);

    InstallEngine mapped{NodeId(n)};
    ASSERT_TRUE(mapped.InstallFull(v4->full_slices[n], v4->target_fp).ok()) << "node " << n;
    EXPECT_EQ(mapped.strategy_fingerprint(), v4->target_fp);
    EXPECT_TRUE(mapped.slice().empty());  // zero-parse: stored as the image
    EXPECT_EQ(mapped.image(), v4->full_slices[n]);
  }
}

// --- spec plumbing (pace-fraction=, wire=) ----------------------------------

TEST(StrategyBinarySpec, PaceFractionAndWireRoundTripCanonically) {
  const std::string text =
      "BTRX 1\n"
      "NAME fmt\n"
      "SCENARIO convoy nodes=8\n"
      "CONFIG f=1 recovery-us=800000 seed=3 dissem=gossip pace-fraction=0.125 wire=v4\n"
      "PHASE periods=10\n"
      "END\n";
  auto spec = ParseExperimentSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->pace_mille, 125u);
  EXPECT_EQ(spec->wire_version, 4u);
  EXPECT_EQ(SerializeExperimentSpec(*spec), text);

  const BtrConfig config = MakeBtrConfig(*spec);
  EXPECT_DOUBLE_EQ(config.runtime.dissem.pace_fraction, 0.125);
  EXPECT_EQ(config.wire_format, StrategyWireFormat::kV4Binary);

  // Defaults serialize as absent keys; wire=v2 is the default spelling.
  spec->pace_mille = 0;
  spec->wire_version = 0;
  const std::string out = SerializeExperimentSpec(*spec);
  EXPECT_EQ(out.find("pace-fraction"), std::string::npos);
  EXPECT_EQ(out.find("wire="), std::string::npos);

  // Canonical spellings for the value grammar.
  uint32_t mille = 0;
  EXPECT_TRUE(ParsePaceFraction("1", &mille));
  EXPECT_EQ(mille, 1000u);
  EXPECT_TRUE(ParsePaceFraction("0.5", &mille));
  EXPECT_EQ(mille, 500u);
  EXPECT_TRUE(ParsePaceFraction("0.001", &mille));
  EXPECT_EQ(mille, 1u);
  EXPECT_EQ(PaceFractionText(250), "0.25");
  EXPECT_EQ(PaceFractionText(1000), "1");
  EXPECT_EQ(PaceFractionText(5), "0.005");
  for (const char* bad : {"0", "0.0", "0.250", "1.5", "2", ".25", "0.2500", "-0.5", "0.",
                          "0.x"}) {
    EXPECT_FALSE(ParsePaceFraction(bad, &mille)) << bad;
  }
}

TEST(StrategyBinarySpec, RejectsMalformedKeys) {
  const char* kBad[] = {
      "CONFIG f=1 recovery-us=800000 seed=3 pace-fraction=0\n",
      "CONFIG f=1 recovery-us=800000 seed=3 pace-fraction=2\n",
      "CONFIG f=1 recovery-us=800000 seed=3 pace-fraction=0.250\n",
      "CONFIG f=1 recovery-us=800000 seed=3 wire=v3\n",
      "CONFIG f=1 recovery-us=800000 seed=3 wire=binary\n",
  };
  for (const char* config : kBad) {
    const std::string text = std::string("BTRX 1\nNAME fmt\nSCENARIO convoy nodes=8\n") +
                             config + "PHASE periods=10\nEND\n";
    EXPECT_FALSE(ParseExperimentSpec(text).ok()) << config;
  }
}

// --- end-to-end: format invariance ------------------------------------------

std::string RolloutSpecText(const std::string& extra_config) {
  return "BTRX 1\n"
         "NAME fmt_convoy\n"
         "SCENARIO convoy nodes=8\n"
         "CONFIG f=1 recovery-us=800000 seed=3" +
         extra_config +
         "\n"
         "PHASE periods=60\n"
         "EDIT at-us=600000 kind=task-add name=gap_log task-kind=sink wcet-us=80"
         " crit=best-effort node=0 deadline-us=20000 chan=gap_est1:gap_log:64\n"
         "END\n";
}

TEST(StrategyBinaryE2E, GossipV4RolloutInstallsEverywhereAndShipsFewerBytes) {
  auto v2_spec = ParseExperimentSpec(RolloutSpecText(" dissem=gossip"));
  auto v4_spec = ParseExperimentSpec(RolloutSpecText(" dissem=gossip wire=v4"));
  ASSERT_TRUE(v2_spec.ok() && v4_spec.ok());
  auto v2 = RunExperiment(*v2_spec);
  auto v4 = RunExperiment(*v4_spec);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ASSERT_TRUE(v4.ok()) << v4.status().ToString();
  ASSERT_EQ(v4->phases.size(), 1u);
  const RunReport& r2 = v2->phases[0];
  const RunReport& r4 = v4->phases[0];

  // Same rollout outcome: every node installed, correctness clean, and the
  // text-domain strategy identity chain unchanged by the wire format.
  EXPECT_EQ(r4.install.nodes_installed, 8u);
  EXPECT_EQ(r4.correctness.correct_instances, r4.correctness.total_instances);
  EXPECT_FALSE(r4.correctness.btr_violated);
  EXPECT_EQ(r4.correctness.correct_instances, r2.correctness.correct_instances);
  EXPECT_EQ(r4.correctness.total_instances, r2.correctness.total_instances);
  EXPECT_EQ(r4.install.nodes_installed, r2.install.nodes_installed);

  // The format is a cost knob: the packed rollout moves fewer wire bytes.
  const uint64_t v2_bytes = r2.install.dissem.bytes_sent;
  const uint64_t v4_bytes = r4.install.dissem.bytes_sent;
  EXPECT_LT(v4_bytes, v2_bytes);
}

TEST(StrategyBinaryE2E, V4ReportsAreByteIdenticalAcrossShardCounts) {
  setenv("BTR_SHARD_EXEC", "threads", 1);
  std::string baseline;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    auto spec = ParseExperimentSpec(RolloutSpecText(" dissem=gossip wire=v4"));
    ASSERT_TRUE(spec.ok());
    spec->shards = shards;
    auto report = RunExperiment(*spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const std::string dump = SerializeExperimentReport(*report);
    if (shards == 1) {
      baseline = dump;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(dump, baseline) << "v4 report diverged at shards=" << shards;
    }
  }
  unsetenv("BTR_SHARD_EXEC");
}

TEST(StrategyBinaryE2E, RunReportsMatchAcrossStrategySources) {
  // The same scenario run three ways — strategy planned in-process, loaded
  // from the v2 text blob, loaded from the v4 image — must produce
  // byte-identical run reports (provenance records the source; the
  // simulation must not care).
  auto make_system = [] {
    Rng rng(42);
    RandomDagParams params;
    params.compute_nodes = 4;
    params.layers = 2;
    params.tasks_per_layer = 3;
    Scenario s = MakeRandomScenario(&rng, params);
    BtrConfig config;
    config.planner.max_faults = 1;
    config.planner.recovery_bound = Milliseconds(500);
    config.seed = 42;
    return BtrSystem(std::move(s), config);
  };

  BtrSystem planned = make_system();
  ASSERT_TRUE(planned.Plan().ok());
  const std::string v2_blob = SaveStrategy(
      planned.strategy(), planned.planner().graph(), planned.scenario().topology);
  auto v4_image = SaveStrategyV4(planned.strategy(), planned.planner().graph(),
                                 planned.scenario().topology);
  ASSERT_TRUE(v4_image.ok());
  auto planned_report = planned.Run(100);
  ASSERT_TRUE(planned_report.ok());
  const std::string baseline = SerializeRunReport(*planned_report);

  for (const std::string& serialized : {v2_blob, *v4_image}) {
    BtrSystem system = make_system();
    auto loaded = LoadStrategy(serialized, system.planner().graph(),
                               system.scenario().topology);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_TRUE(
        system.AdoptStrategy(std::make_shared<const Strategy>(std::move(*loaded))).ok());
    auto report = system.Run(100);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(SerializeRunReport(*report), baseline)
        << "report diverged for source_format "
        << system.strategy().provenance().source_format;
  }
}

}  // namespace
}  // namespace btr
